"""Performance micro-benchmarks for the obfuscate→execute→measure loop.

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf/run_bench.py [--quick|--smoke] [--out PATH]

or via ``scripts/bench.sh``.  Writes ``BENCH_results.json`` so subsequent PRs
can diff the perf trajectory.  Tracked metrics:

* **vm** — steps/second of the interpreter on the Figure-6 workloads,
  compiled dispatch vs. the legacy ``isinstance``-ladder path (kept in-tree
  as the reference semantics);
* **vm_superblock** — the three-tier VM: legacy vs compiled vs superblock
  (fused hot-chain traces, :mod:`repro.vm.compiler`) steps/s both cold
  (fresh interpreter per run — the superblock column pays chain selection
  and codegen) and steady-state (one interpreter per program, warmed past
  the trace JIT threshold, then timed over repeat ``run_many`` batches —
  the superblock headline, expected ≥1.5× compiled), plus the figure-6/7
  measurement loop driven through batched multi-input execution
  (:class:`~repro.evaluation.sharding.ShardBatch` /
  :meth:`~repro.vm.batch.VMBatch.run_many`), compiled vs superblock
  dispatch, both asserted row-identical to the serial reference;
* **fig6_measure_loop** — the overhead-*measurement* loop of Figures 6/7:
  executing every built variant in the VM to collect dynamic cycle counts,
  compiled vs. legacy dispatch;
* **fig6_end_to_end** — the same loop including the build phases
  (obfuscate, optimize, lower), run through a shared
  :class:`~repro.core.variant_cache.VariantCache` exactly as the figure
  drivers do; reports the cache stats alongside the timings;
* **pipeline** — wall time of the *uncached* build phases alone (the raw
  cost of obfuscate → optimize → lower, i.e. incremental simplify-cfg and
  one-pass clone/link);
* **variant_cache** — cold-vs-warm build comparison plus the figure-8 reuse
  check: after the overhead loop has populated the cache, a
  figure-8-style precision run must hit it (nonzero ``fig8.hit_rate``);
* **fig8_diff_phase** — the diffing phase of the figure-8 precision matrix
  against a warm variant cache: the ``FeatureIndex`` fast path vs the legacy
  per-diff extraction (``REPRO_DIFF_FEATURES=legacy``) and the process
  executor at ``jobs=2``; both alternates are asserted row-identical to the
  indexed serial run;
* **fig67_sharded** — the figure-6/7 overhead matrix through the sharded
  scheduler (:mod:`repro.evaluation.sharding`) and the shared artifact store
  (``REPRO_STORE_DIR``): serial vs ``jobs=2`` row-identity, cold vs
  warm-attach timings, and the store's hit/miss/put counters — a warm attach
  must rebuild **zero** variants;
* **verify_overhead** — full-tier IR verification (structural + types +
  dominance + dataflow lints, :mod:`repro.analysis.static`) over the fig6
  variant set: structural-tier baseline, cold full tier (fresh
  ``AnalysisManager`` per run) vs warm full tier (persistent manager —
  every function is a ``verify:full`` cache hit, the regime
  ``PassManager(verify_each=...)`` re-verification runs in), reported
  against the uncached build phase (acceptance: warm < 10% of build);
* **fig8_function_sharded** — the figure-8 precision matrix through the
  *function-granularity* diff sharding
  (:mod:`repro.evaluation.diff_sharding`) over a shared store: serial
  reference vs cold shard run vs ``jobs=2`` vs warm re-attach timings, all
  asserted row-identical; a warm run must adopt every per-function diff
  payload from the tree, re-score **zero** units and rebuild **zero**
  ``FeatureIndex`` payloads;
* **fault_overhead** — the cost of the supervision layer when nothing
  fails: the fig8 function-sharded matrix at ``jobs=2`` over one warm tree,
  supervised scheduler vs the PR 5 ``pool.map`` path
  (``REPRO_EXECUTOR=legacy``), checkpointing disabled so neither arm
  resume-short-circuits; both row sets asserted identical to the serial
  reference (acceptance: supervised within 5% of legacy — informational
  here, timing assertions stay out of --smoke);
* **telemetry_overhead** — what :mod:`repro.obs` costs: VM steady-state
  steps/s with tracing enabled vs disabled, and the warm fig8
  function-sharded matrix at ``jobs=2`` (checkpointing off, like
  ``fault_overhead``) with ``REPRO_TRACE=1`` vs unset — the traced arm
  pays span recording, per-task flushes and the run-exit merge, and must
  stay row-identical to the untraced arm and the serial reference
  (acceptance: ≤2% disabled-mode overhead — informational here); the
  traced run's merged telemetry is folded back in as a per-phase
  self-time summary (``scripts/trace_report.py`` is the interactive view).

Set ``REPRO_VARIANT_CACHE_DIR`` to also exercise the legacy disk-persisted
variant cache (save → reload round trip; adds a ``disk_cache`` section).
``REPRO_STORE_DIR`` anchors the fig67 store tree (a fresh subtree per run);
unset, a temp directory is used.

All workloads are deterministic (profile-seeded), so the only
run-to-run variance is machine noise; every timing is a best-of-``reps``.
``--smoke`` is for CI: one rep, fewest programs, and a schema check on the
written JSON — no timing-sensitive assertions.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import tempfile
import time
from typing import Callable, Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro.core.variant_cache import (VariantCache,     # noqa: E402
                                      cache_file_path)
from repro.diffing.index import clear_index_cache       # noqa: E402
from repro.evaluation.overhead import measure_overhead  # noqa: E402
from repro.evaluation.precision import measure_precision  # noqa: E402
from repro.opt.pipelines import optimize_program        # noqa: E402
from repro.backend.lowering import lower_program        # noqa: E402
from repro.core.obfuscator import obfuscate             # noqa: E402
from repro.evaluation.sharding import ShardBatch        # noqa: E402
from repro.vm.machine import (DISPATCH_TIERS,           # noqa: E402
                              Interpreter, run_program)
from repro.workloads.suites import (spec2006_programs,  # noqa: E402
                                    spec2017_programs)

MEASURE_LABELS = ("fission", "fufi.ori")

#: Keys every result file must contain (checked by --smoke).
REQUIRED_KEYS = ("schema", "config", "vm", "vm_superblock",
                 "fig6_measure_loop", "fig6_end_to_end", "pipeline",
                 "variant_cache", "fig8_diff_phase", "fig67_sharded",
                 "fig8_function_sharded", "fault_overhead",
                 "verify_overhead", "telemetry_overhead", "remote_store")


def best_of(fn: Callable[[], object], reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        gc.collect()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_vm(programs, reps: int) -> Dict[str, object]:
    built = [wp.build() for wp in programs]
    # verify both dispatchers agree before timing anything
    steps = 0
    for program in built:
        legacy = run_program(program, compiled=False)
        fast = run_program(program, compiled=True)
        assert legacy.observable() == fast.observable()
        assert legacy.cycles == fast.cycles and legacy.steps == fast.steps
        steps += legacy.steps

    legacy_s = best_of(
        lambda: [run_program(p, compiled=False) for p in built], reps)
    compiled_s = best_of(
        lambda: [run_program(p, compiled=True) for p in built], reps)
    return {
        "programs": [wp.name for wp in programs],
        "steps": steps,
        "legacy_s": round(legacy_s, 4),
        "compiled_s": round(compiled_s, 4),
        "steps_per_sec_legacy": int(steps / legacy_s),
        "steps_per_sec_compiled": int(steps / compiled_s),
        "speedup": round(legacy_s / compiled_s, 2),
    }


def bench_vm_superblock(vm_programs, loop_programs, reps: int,
                        batch: int) -> Dict[str, object]:
    """The three-tier VM: superblock traces vs compiled blocks vs legacy.

    ``cold`` times a fresh interpreter per run — the superblock column pays
    chain selection and trace codegen on top of execution.  ``steady`` is
    the headline: one interpreter per program, warmed past the trace JIT
    threshold, then timed over repeat :meth:`Interpreter.run_many` batches —
    the regime the batched figure drivers run in.  ``fig67_batched`` drives
    the figure-6/7 measurement matrix through
    :class:`~repro.evaluation.sharding.ShardBatch` with a ``batch``-input
    ``run_many`` per variant (one interpreter, per-input envs, amortized
    setup), compiled vs superblock dispatch; both row sets are asserted
    identical to the serial :func:`measure_overhead` reference before any
    timing is taken.
    """
    built = [wp.build() for wp in vm_programs]
    # verify all three tiers agree before timing anything
    steps = 0
    for program in built:
        reference = run_program(program, dispatch="legacy")
        for tier in ("compiled", "superblock"):
            result = run_program(program, dispatch=tier)
            assert result.observable() == reference.observable()
            assert (result.cycles, result.steps) == (reference.cycles,
                                                     reference.steps)
        steps += reference.steps

    cold = {}
    for tier in DISPATCH_TIERS:
        cold_s = best_of(
            lambda t=tier: [run_program(p, dispatch=t) for p in built], reps)
        cold[tier] = {"s": round(cold_s, 4),
                      "steps_per_sec": int(steps / cold_s)}

    warmup_runs, timed_runs = 16, 8
    warm_sets = tuple(() for _ in range(warmup_runs))
    timed_sets = tuple(() for _ in range(timed_runs))
    steady = {}
    for tier in DISPATCH_TIERS:
        interpreters = [Interpreter(program, dispatch=tier)
                        for program in built]
        for interpreter in interpreters:
            interpreter.run_many(warm_sets)
        steady_s = best_of(
            lambda vms=interpreters: [vm.run_many(timed_sets) for vm in vms],
            reps)
        steady[tier] = {"s": round(steady_s, 4),
                        "steps_per_sec": int(steps * timed_runs / steady_s)}

    labels = MEASURE_LABELS
    reference_rows = measure_overhead(loop_programs, labels=labels,
                                      jobs=1).rows
    # warm the build cache so the timed columns measure the VM, not builds
    cache = VariantCache()
    measure_overhead(loop_programs, labels=labels, cache=cache)
    batch_sets = tuple(() for _ in range(batch))

    def batched_rows(dispatch: str):
        rows = []
        for workload in loop_programs:
            shard = ShardBatch(workload, None, cache, input_sets=batch_sets,
                               dispatch=dispatch)
            rows.extend(shard.rows(labels))
        return rows

    identical = {tier: batched_rows(tier) == reference_rows
                 for tier in ("compiled", "superblock")}
    compiled_batched_s = best_of(lambda: batched_rows("compiled"),
                                 max(1, reps // 2))
    superblock_batched_s = best_of(lambda: batched_rows("superblock"),
                                   max(1, reps // 2))

    return {
        "programs": [wp.name for wp in vm_programs],
        "steps": steps,
        "cold": cold,
        "steady": {"warmup_runs": warmup_runs, "timed_runs": timed_runs,
                   "tiers": steady},
        "steady_superblock_vs_compiled": round(
            steady["compiled"]["s"] / steady["superblock"]["s"], 2),
        "fig67_batched": {
            "programs": [wp.name for wp in loop_programs],
            "labels": list(labels),
            "batch": batch,
            "rows": len(reference_rows),
            "compiled_s": round(compiled_batched_s, 4),
            "superblock_s": round(superblock_batched_s, 4),
            "speedup": round(compiled_batched_s / superblock_batched_s, 2),
            "identical": identical,
        },
    }


def _build_variants(programs) -> List:
    """The build phase of the fig6/fig7 loop: every variant of every program."""
    variants = []
    for wp in programs:
        baseline = optimize_program(wp.build())
        lower_program(baseline)
        variants.append(baseline)
        for label in MEASURE_LABELS:
            result = obfuscate(wp.build(), mode=label)
            optimized = optimize_program(result.program)
            lower_program(optimized)
            variants.append(optimized)
    return variants


def bench_fig6_measure_loop(programs, reps: int) -> Dict[str, object]:
    variants = _build_variants(programs)
    legacy_s = best_of(
        lambda: [run_program(v, compiled=False) for v in variants], reps)
    compiled_s = best_of(
        lambda: [run_program(v, compiled=True) for v in variants], reps)
    return {
        "programs": [wp.name for wp in programs],
        "labels": list(MEASURE_LABELS),
        "variants": len(variants),
        "legacy_s": round(legacy_s, 4),
        "compiled_s": round(compiled_s, 4),
        "speedup": round(legacy_s / compiled_s, 2),
    }


def bench_fig6_end_to_end(programs, reps: int) -> Dict[str, object]:
    cache = VariantCache()

    def loop(dispatch: str):
        os.environ["REPRO_VM_DISPATCH"] = dispatch
        try:
            measure_overhead(programs, labels=MEASURE_LABELS, cache=cache)
        finally:
            os.environ.pop("REPRO_VM_DISPATCH", None)

    legacy_s = best_of(lambda: loop("legacy"), reps)
    compiled_s = best_of(lambda: loop("compiled"), reps)
    return {
        "programs": [wp.name for wp in programs],
        "labels": list(MEASURE_LABELS),
        "legacy_s": round(legacy_s, 4),
        "compiled_s": round(compiled_s, 4),
        "speedup": round(legacy_s / compiled_s, 2),
        "cache": cache.stats(),
    }


def bench_pipeline(programs, reps: int) -> Dict[str, object]:
    wall = best_of(lambda: _build_variants(programs), reps)
    return {
        "programs": [wp.name for wp in programs],
        "labels": list(MEASURE_LABELS),
        "obfuscate_optimize_lower_s": round(wall, 4),
    }


def bench_variant_cache(programs, reps: int) -> Dict[str, object]:
    """Cold vs warm build loop, plus the figure-8 cross-experiment reuse."""
    cache = VariantCache()
    gc.collect()
    start = time.perf_counter()
    measure_overhead(programs, labels=MEASURE_LABELS, cache=cache)
    cold_s = time.perf_counter() - start
    warm_s = best_of(
        lambda: measure_overhead(programs, labels=MEASURE_LABELS, cache=cache),
        reps)

    # figure-8 style: precision over the same workload/label matrix must
    # reuse the variants the overhead loop already built
    hits_before, misses_before = cache.hits, cache.misses
    gc.collect()
    start = time.perf_counter()
    measure_precision(programs, labels=MEASURE_LABELS, cache=cache)
    fig8_s = time.perf_counter() - start
    fig8_hits = cache.hits - hits_before
    fig8_misses = cache.misses - misses_before
    fig8_total = fig8_hits + fig8_misses
    return {
        "programs": [wp.name for wp in programs],
        "labels": list(MEASURE_LABELS),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "build_speedup": round(cold_s / warm_s, 2) if warm_s else None,
        "fig8": {
            "precision_s": round(fig8_s, 4),
            "hits": fig8_hits,
            "misses": fig8_misses,
            "hit_rate": round(fig8_hits / fig8_total, 4) if fig8_total else 0.0,
        },
        "overall": cache.stats(),
    }


def bench_fig8_diff_phase(programs, reps: int) -> Dict[str, object]:
    """The diffing phase of figure 8 (variants already built and cached).

    Compares the FeatureIndex fast path against the legacy per-diff
    extraction and the process executor at ``jobs=2``; the three reports
    must be row-identical (``identical`` — a structural check, not a timing).
    """
    cache = VariantCache()
    labels = MEASURE_LABELS
    # pin the feature path per measurement (and restore any ambient value at
    # the end) so the legacy/indexed columns never mislabel each other
    previous_features = os.environ.get("REPRO_DIFF_FEATURES")

    def run_with(features: str):
        os.environ["REPRO_DIFF_FEATURES"] = features
        return measure_precision(programs, labels=labels, cache=cache)

    try:
        reference = run_with("indexed")
        indexed_s = best_of(lambda: run_with("indexed"), reps)
        legacy_report = run_with("legacy")
        legacy_s = best_of(lambda: run_with("legacy"), max(1, reps // 2))

        os.environ["REPRO_DIFF_FEATURES"] = "indexed"
        # hand the executor workers the already-built variants through a
        # temporary disk cache, so jobs2_s times the diff phase + pool
        # overhead like the other columns, not variant rebuilding
        with tempfile.TemporaryDirectory() as tmpdir:
            cache.save(cache_file_path(tmpdir))
            previous_dir = os.environ.get("REPRO_VARIANT_CACHE_DIR")
            os.environ["REPRO_VARIANT_CACHE_DIR"] = tmpdir
            try:
                gc.collect()
                start = time.perf_counter()
                parallel_report = measure_precision(programs, labels=labels,
                                                    jobs=2)
                jobs2_s = time.perf_counter() - start
            finally:
                if previous_dir is None:
                    os.environ.pop("REPRO_VARIANT_CACHE_DIR", None)
                else:
                    os.environ["REPRO_VARIANT_CACHE_DIR"] = previous_dir

        # a cold run re-featurizes every binary once (the indexed timing
        # above amortises the index across reps, like the figure drivers do)
        clear_index_cache()
        cold_s = best_of(
            lambda: (clear_index_cache(), run_with("indexed")),
            max(1, reps // 2))
    finally:
        if previous_features is None:
            os.environ.pop("REPRO_DIFF_FEATURES", None)
        else:
            os.environ["REPRO_DIFF_FEATURES"] = previous_features

    return {
        "programs": [wp.name for wp in programs],
        "labels": list(labels),
        "rows": len(reference.rows),
        "legacy_s": round(legacy_s, 4),
        "indexed_s": round(indexed_s, 4),
        "indexed_cold_s": round(cold_s, 4),
        "jobs2_s": round(jobs2_s, 4),
        "speedup": round(legacy_s / indexed_s, 2) if indexed_s else None,
        "identical": {
            "legacy": legacy_report.rows == reference.rows,
            "jobs2": parallel_report.rows == reference.rows,
        },
    }


def bench_fig67_sharded(programs, reps: int) -> Dict[str, object]:
    """Figures 6/7 through the sharded scheduler and the shared store.

    Times the serial reference, a cold store-backed run (every variant built
    and persisted), a warm re-attach (zero rebuilds — asserted structurally
    by --smoke) and the ``jobs=2`` sharded run whose workers attach to the
    same tree; serial and sharded rows must be identical.
    """
    from repro.evaluation.executor import reset_worker_cache
    from repro.store import KIND_VARIANT, ArtifactStore

    labels = MEASURE_LABELS
    # jobs=1 pins the differential reference to the serial loop even when an
    # ambient REPRO_JOBS would otherwise engage the executor
    reference = measure_overhead(programs, labels=labels, jobs=1)
    serial_s = best_of(
        lambda: measure_overhead(programs, labels=labels, jobs=1), reps)

    base_dir = os.environ.get("REPRO_STORE_DIR")
    if base_dir:
        os.makedirs(base_dir, exist_ok=True)
        store_root = tempfile.mkdtemp(prefix="fig67-", dir=base_dir)
        cleanup_dir = None
    else:
        cleanup_dir = tempfile.TemporaryDirectory(prefix="fig67-store-")
        store_root = cleanup_dir.name
    try:
        cold_cache = VariantCache(store=ArtifactStore.attach(store_root))
        gc.collect()
        start = time.perf_counter()
        cold_report = measure_overhead(programs, labels=labels,
                                       cache=cold_cache)
        cold_attach_s = time.perf_counter() - start
        cold_stats = cold_cache.store_stats()

        warm_cache = VariantCache(store=ArtifactStore.attach(store_root))
        warm_rows: List = []

        def warm_run():
            report = measure_overhead(programs, labels=labels,
                                      cache=warm_cache)
            if not warm_rows:
                # the first warm run is the one whose artifacts crossed the
                # disk-unpickle read path; its rows feed the identity check
                warm_rows.extend(report.rows)
            return report

        warm_attach_s = best_of(warm_run, reps)
        warm_stats = warm_cache.store_stats()
        # the first warm run answers "how many variants were rebuilt?"
        warm_rebuilds = warm_stats["misses"]

        objects_before = warm_cache.store.entry_count(KIND_VARIANT)
        previous_store = os.environ.get("REPRO_STORE_DIR")
        os.environ["REPRO_STORE_DIR"] = store_root
        reset_worker_cache()
        try:
            gc.collect()
            start = time.perf_counter()
            sharded = measure_overhead(programs, labels=labels, jobs=2)
            jobs2_s = time.perf_counter() - start
        finally:
            reset_worker_cache()
            if previous_store is None:
                os.environ.pop("REPRO_STORE_DIR", None)
            else:
                os.environ["REPRO_STORE_DIR"] = previous_store
        objects_after = ArtifactStore.attach(store_root).entry_count(
            KIND_VARIANT)
    finally:
        if cleanup_dir is not None:
            cleanup_dir.cleanup()

    # the store tree lives in a per-run temp directory; its random path
    # would be pure noise in the tracked results file
    for stats in (cold_stats, warm_stats):
        stats.pop("root", None)
    return {
        "programs": [wp.name for wp in programs],
        "labels": list(labels),
        "rows": len(reference.rows),
        "serial_s": round(serial_s, 4),
        "cold_attach_s": round(cold_attach_s, 4),
        "warm_attach_s": round(warm_attach_s, 4),
        "jobs2_s": round(jobs2_s, 4),
        "warm_attach_speedup": (round(cold_attach_s / warm_attach_s, 2)
                                if warm_attach_s else None),
        "warm_attach_rebuilds": warm_rebuilds,
        "store": {"cold": cold_stats, "warm": warm_stats,
                  "objects": objects_after},
        "identical": {
            "cold_attach": cold_report.rows == reference.rows,
            "warm_attach": warm_rows == reference.rows,
            "jobs2": sharded.rows == reference.rows,
            "jobs2_no_new_objects": objects_after == objects_before,
        },
    }


def bench_fig8_function_sharded(programs, reps: int) -> Dict[str, object]:
    """Figure 8 through the function-granularity diff sharding + the store.

    Times the serial reference, a cold sharded run against a fresh store
    tree (every unit scored and persisted under its per-function shard key),
    a ``jobs=2`` run over the now-warm tree, and a warm serial re-attach —
    which must adopt every diff payload, re-score zero units and rebuild
    zero ``FeatureIndex`` payloads (asserted structurally by --smoke).
    """
    from repro.evaluation.diff_sharding import (DiffShardStats,
                                                measure_precision_sharded)
    from repro.evaluation.executor import reset_worker_cache

    labels = MEASURE_LABELS
    # jobs=1 pins the differential reference to the serial loop even when an
    # ambient REPRO_JOBS would otherwise engage the executor
    reference = measure_precision(programs, labels=labels, jobs=1)
    serial_s = best_of(
        lambda: measure_precision(programs, labels=labels, jobs=1), reps)

    base_dir = os.environ.get("REPRO_STORE_DIR")
    if base_dir:
        os.makedirs(base_dir, exist_ok=True)
        store_root = tempfile.mkdtemp(prefix="fig8-", dir=base_dir)
        cleanup_dir = None
    else:
        cleanup_dir = tempfile.TemporaryDirectory(prefix="fig8-store-")
        store_root = cleanup_dir.name
    previous_store = os.environ.get("REPRO_STORE_DIR")
    os.environ["REPRO_STORE_DIR"] = store_root
    reset_worker_cache()
    try:
        def timed_run(jobs, stats):
            reset_worker_cache()
            gc.collect()
            start = time.perf_counter()
            report = measure_precision_sharded(programs, labels=labels,
                                               jobs=jobs, stats=stats)
            return report, time.perf_counter() - start

        cold_stats = DiffShardStats()
        cold, cold_s = timed_run(1, cold_stats)
        jobs2_stats = DiffShardStats()
        jobs2, jobs2_s = timed_run(2, jobs2_stats)
        warm_stats = DiffShardStats()
        warm, warm_s = timed_run(1, warm_stats)
    finally:
        reset_worker_cache()
        if previous_store is None:
            os.environ.pop("REPRO_STORE_DIR", None)
        else:
            os.environ["REPRO_STORE_DIR"] = previous_store
        if cleanup_dir is not None:
            cleanup_dir.cleanup()

    return {
        "programs": [wp.name for wp in programs],
        "labels": list(labels),
        "rows": len(reference.rows),
        "serial_s": round(serial_s, 4),
        "cold_shard_s": round(cold_s, 4),
        "jobs2_s": round(jobs2_s, 4),
        "warm_shard_s": round(warm_s, 4),
        "warm_shard_speedup": round(cold_s / warm_s, 2) if warm_s else None,
        "warm_feature_rebuilds": warm_stats.features_persisted,
        "stats": {"cold": cold_stats.as_dict(),
                  "jobs2": jobs2_stats.as_dict(),
                  "warm": warm_stats.as_dict()},
        "identical": {
            "cold": cold.rows == reference.rows,
            "jobs2": jobs2.rows == reference.rows,
            "warm": warm.rows == reference.rows,
        },
    }


def bench_remote_store(programs, reps: int) -> Dict[str, object]:
    """Figure 8 over a loopback store server vs the local tree.

    Runs the function-sharded matrix cold and warm twice — once attached
    to a local ``REPRO_STORE_DIR`` tree, once through ``REPRO_STORE_URL``
    to a loopback ``scripts/store_server.py`` (every artifact crossing the
    wire) — then resumes the warm remote tree through the two-partition
    coordinator.  Server-side request counters make the read coalescing
    visible: a warm remote rerun serves its shard objects out of far fewer
    requests than objects.
    """
    scripts = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                           "..", "..", "scripts"))
    if scripts not in sys.path:
        sys.path.insert(0, scripts)
    from store_server import StoreServer
    from repro.evaluation.checkpoint import ShardRunStats
    from repro.evaluation.coordinate import (CoordinatorStats,
                                             measure_precision_coordinated)
    from repro.evaluation.diff_sharding import measure_precision_sharded
    from repro.evaluation.executor import reset_worker_cache

    labels = MEASURE_LABELS
    reference = measure_precision(programs, labels=labels, jobs=1)
    env_keys = ("REPRO_STORE_DIR", "REPRO_STORE_URL",
                "REPRO_STORE_CACHE_DIR", "REPRO_REMOTE_BACKOFF")
    saved = {name: os.environ.get(name) for name in env_keys}

    def timed_sharded():
        reset_worker_cache()
        gc.collect()
        stats = ShardRunStats()
        start = time.perf_counter()
        report = measure_precision_sharded(programs, labels=labels, jobs=2,
                                           run_stats=stats)
        return report, time.perf_counter() - start, stats

    def server_counters(state):
        return {"requests": state.requests,
                "objects_served": state.objects_served,
                "bytes_served": state.bytes_served,
                "objects_written": state.objects_written}

    def delta(after, before):
        return {name: after[name] - before[name] for name in after}

    local_dir = tempfile.TemporaryDirectory(prefix="bench-local-store-")
    remote_dir = tempfile.TemporaryDirectory(prefix="bench-remote-store-")
    try:
        for name in env_keys:
            os.environ.pop(name, None)
        os.environ["REPRO_STORE_DIR"] = local_dir.name
        local_cold, local_cold_s, _ = timed_sharded()
        local_warm, local_warm_s, local_warm_stats = timed_sharded()

        os.environ.pop("REPRO_STORE_DIR", None)
        os.environ["REPRO_REMOTE_BACKOFF"] = "0.001"
        with StoreServer(remote_dir.name) as server:
            os.environ["REPRO_STORE_URL"] = server.url
            mark = server_counters(server.state)
            remote_cold, remote_cold_s, _ = timed_sharded()
            cold_counters = server_counters(server.state)
            remote_warm, remote_warm_s, remote_warm_stats = timed_sharded()
            warm_counters = server_counters(server.state)

            # the coordinator over the same warm tree: shared journal, so
            # every partition revives its shards without re-executing
            reset_worker_cache()
            coord_stats = CoordinatorStats()
            start = time.perf_counter()
            coordinated = measure_precision_coordinated(
                programs, labels=labels, workers=2, coord_stats=coord_stats)
            coordinated_s = time.perf_counter() - start
    finally:
        reset_worker_cache()
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        local_dir.cleanup()
        remote_dir.cleanup()

    warm_delta = delta(warm_counters, cold_counters)
    return {
        "programs": [wp.name for wp in programs],
        "labels": list(labels),
        "rows": len(reference.rows),
        "local": {"cold_s": round(local_cold_s, 4),
                  "warm_s": round(local_warm_s, 4),
                  "warm_executed": local_warm_stats.executed},
        "remote": {"cold_s": round(remote_cold_s, 4),
                   "warm_s": round(remote_warm_s, 4),
                   "warm_executed": remote_warm_stats.executed,
                   "server": {"cold": delta(cold_counters, mark),
                              "warm": warm_delta}},
        "coordinated_remote": {"seconds": round(coordinated_s, 4),
                               **coord_stats.as_dict()},
        "remote_overhead": {
            "cold_pct": round((remote_cold_s / local_cold_s - 1) * 100, 1)
            if local_cold_s else None,
            "warm_pct": round((remote_warm_s / local_warm_s - 1) * 100, 1)
            if local_warm_s else None,
        },
        "warm_read_coalescing": {
            "requests": warm_delta["requests"],
            "objects_served": warm_delta["objects_served"],
            "objects_per_request": round(
                warm_delta["objects_served"] / warm_delta["requests"], 2)
            if warm_delta["requests"] else None,
        },
        "identical": {
            "local_cold": local_cold.rows == reference.rows,
            "local_warm": local_warm.rows == reference.rows,
            "remote_cold": remote_cold.rows == reference.rows,
            "remote_warm": remote_warm.rows == reference.rows,
            "coordinated_remote": coordinated.rows == reference.rows,
        },
    }


def bench_fault_overhead(programs, reps: int) -> Dict[str, object]:
    """What the supervision layer costs when nothing fails.

    Runs the fig8 function-sharded matrix at ``jobs=2`` over one warm store
    tree twice: once through the supervised scheduler (per-task futures,
    timeout bookkeeping, retry accounting) and once through the PR 5
    ``pool.map`` path (``REPRO_EXECUTOR=legacy``).  The tree is warmed
    first so both arms time scheduling + store reads, not variant builds,
    and ``REPRO_CHECKPOINT=off`` keeps the checkpoint layer from serving
    either arm from the run journal.  Acceptance: supervised within 5% of
    legacy (informational — only the row-identity checks gate --smoke).
    """
    from repro.evaluation.diff_sharding import measure_precision_sharded
    from repro.evaluation.executor import reset_worker_cache

    labels = MEASURE_LABELS
    reference = measure_precision(programs, labels=labels, jobs=1)

    base_dir = os.environ.get("REPRO_STORE_DIR")
    if base_dir:
        os.makedirs(base_dir, exist_ok=True)
        store_root = tempfile.mkdtemp(prefix="faults-", dir=base_dir)
        cleanup_dir = None
    else:
        cleanup_dir = tempfile.TemporaryDirectory(prefix="faults-store-")
        store_root = cleanup_dir.name
    saved = {name: os.environ.get(name)
             for name in ("REPRO_STORE_DIR", "REPRO_CHECKPOINT",
                          "REPRO_EXECUTOR", "REPRO_FAULTS")}
    os.environ["REPRO_STORE_DIR"] = store_root
    os.environ["REPRO_CHECKPOINT"] = "off"
    os.environ.pop("REPRO_FAULTS", None)
    try:
        # warm the tree once (serial, no supervision in the timings below)
        reset_worker_cache()
        measure_precision_sharded(programs, labels=labels, jobs=1)

        def timed(mode: str):
            os.environ["REPRO_EXECUTOR"] = mode
            reset_worker_cache()
            gc.collect()
            start = time.perf_counter()
            report = measure_precision_sharded(programs, labels=labels,
                                               jobs=2)
            return report, time.perf_counter() - start

        supervised, supervised_s = timed("supervised")
        legacy, legacy_s = timed("legacy")
        for _ in range(max(0, reps - 1)):
            supervised_s = min(supervised_s, timed("supervised")[1])
            legacy_s = min(legacy_s, timed("legacy")[1])
    finally:
        reset_worker_cache()
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        if cleanup_dir is not None:
            cleanup_dir.cleanup()

    return {
        "programs": [wp.name for wp in programs],
        "labels": list(labels),
        "rows": len(reference.rows),
        "legacy_s": round(legacy_s, 4),
        "supervised_s": round(supervised_s, 4),
        "overhead_pct": (round((supervised_s - legacy_s) / legacy_s * 100, 2)
                         if legacy_s else None),
        "identical": {
            "supervised": supervised.rows == reference.rows,
            "legacy": legacy.rows == reference.rows,
        },
    }


def bench_telemetry_overhead(programs, reps: int) -> Dict[str, object]:
    """What the telemetry layer costs, on and off.

    Two arms.  **vm_steady**: steps/s of warmed interpreters with span
    tracing enabled vs disabled — the registry façades are always on, so
    the delta isolates the tracing flag checks and buffer appends.
    **fig8_jobs2**: the warm fig8 function-sharded matrix at ``jobs=2``
    over one store tree (checkpointing off, exactly like
    ``fault_overhead``), with ``REPRO_TRACE=1`` vs unset: the traced arm
    additionally pays per-task worker flushes and the run-exit
    merge/export, and both arms must stay row-identical to the serial
    reference.  The traced run's merged telemetry is summarised back into
    the results as per-phase self-time shares plus the attribution
    coverage (the fig8 acceptance wants ≥95% of busy time in named
    phases).
    """
    from repro.evaluation.diff_sharding import measure_precision_sharded
    from repro.evaluation.executor import reset_worker_cache
    from repro.obs import tracing

    labels = MEASURE_LABELS
    reference = measure_precision(programs, labels=labels, jobs=1)

    # -- arm 1: VM steady state, tracing flag on vs off -------------------
    built = [wp.build() for wp in programs]
    steps = sum(run_program(p).steps for p in built)
    warm_sets = tuple(() for _ in range(8))
    timed_sets = tuple(() for _ in range(8))

    def steady(trace_on: bool) -> float:
        tracing.set_enabled(trace_on)
        try:
            interpreters = [Interpreter(program) for program in built]
            for interpreter in interpreters:
                interpreter.run_many(warm_sets)
            return best_of(
                lambda: [vm.run_many(timed_sets) for vm in interpreters],
                reps)
        finally:
            tracing.refresh()
            tracing.drain()

    vm_off_s = steady(False)
    vm_on_s = steady(True)

    # -- arm 2: warm fig8 jobs=2, REPRO_TRACE=1 vs unset ------------------
    base_dir = os.environ.get("REPRO_STORE_DIR")
    if base_dir:
        os.makedirs(base_dir, exist_ok=True)
        store_root = tempfile.mkdtemp(prefix="telemetry-", dir=base_dir)
        cleanup_dir = None
    else:
        cleanup_dir = tempfile.TemporaryDirectory(prefix="telemetry-store-")
        store_root = cleanup_dir.name
    saved = {name: os.environ.get(name)
             for name in ("REPRO_STORE_DIR", "REPRO_CHECKPOINT",
                          "REPRO_TRACE", "REPRO_FAULTS")}
    os.environ["REPRO_STORE_DIR"] = store_root
    os.environ["REPRO_CHECKPOINT"] = "off"
    os.environ.pop("REPRO_FAULTS", None)
    os.environ.pop("REPRO_TRACE", None)
    tracing.refresh()
    try:
        # warm the tree once so both arms time scheduling + store reads
        reset_worker_cache()
        measure_precision_sharded(programs, labels=labels, jobs=1)

        def timed(trace_on: bool):
            if trace_on:
                os.environ["REPRO_TRACE"] = "1"
            else:
                os.environ.pop("REPRO_TRACE", None)
            tracing.refresh()
            reset_worker_cache()
            gc.collect()
            start = time.perf_counter()
            report = measure_precision_sharded(programs, labels=labels,
                                               jobs=2)
            return report, time.perf_counter() - start

        off_report, off_s = timed(False)
        on_report, on_s = timed(True)
        for _ in range(max(0, reps - 1)):
            off_s = min(off_s, timed(False)[1])
            on_s = min(on_s, timed(True)[1])
        trace_summary = _fold_trace_summary(store_root)
    finally:
        reset_worker_cache()
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        tracing.refresh()
        tracing.drain()
        if cleanup_dir is not None:
            cleanup_dir.cleanup()

    return {
        "programs": [wp.name for wp in programs],
        "labels": list(labels),
        "rows": len(reference.rows),
        "vm_steady": {
            "steps": steps,
            "off_s": round(vm_off_s, 4),
            "on_s": round(vm_on_s, 4),
            "steps_per_sec_off": int(steps * len(timed_sets) / vm_off_s),
            "steps_per_sec_on": int(steps * len(timed_sets) / vm_on_s),
            "overhead_pct": (round((vm_on_s - vm_off_s) / vm_off_s * 100, 2)
                             if vm_off_s else None),
        },
        "fig8_jobs2": {
            "off_s": round(off_s, 4),
            "on_s": round(on_s, 4),
            "overhead_pct": (round((on_s - off_s) / off_s * 100, 2)
                             if off_s else None),
        },
        "trace": trace_summary,
        "identical": {
            "untraced": off_report.rows == reference.rows,
            "traced": on_report.rows == reference.rows,
        },
    }


def _fold_trace_summary(store_root: str) -> Dict[str, object]:
    """The traced arm's per-phase summary, via ``trace_report.py --json``."""
    import subprocess

    telemetry = os.path.join(store_root, "telemetry")
    try:
        runs = [os.path.join(telemetry, name)
                for name in os.listdir(telemetry)]
    except OSError:
        return {"valid": False, "error": "no telemetry directory"}
    runs = [run for run in runs if os.path.isdir(run)]
    if not runs:
        return {"valid": False, "error": "no telemetry run"}
    run_dir = max(runs, key=os.path.getmtime)
    script = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "..", "..", "scripts", "trace_report.py")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(os.path.abspath(
        __file__)), "..", "..", "src")
    result = subprocess.run(
        [sys.executable, script, "--validate", "--json", run_dir],
        capture_output=True, text=True, env=env)
    if result.returncode != 0:
        return {"valid": False, "error": result.stderr.strip()[:500]}
    try:
        report = json.loads(result.stdout[result.stdout.index("{"):])
    except ValueError:
        return {"valid": False, "error": "unparsable trace_report output"}
    return {
        "valid": True,
        "wall_seconds": report.get("wall_seconds"),
        "busy_seconds": report.get("busy_seconds"),
        "coverage": report.get("coverage"),
        "phases": report.get("phases"),
        "processes": len(report.get("processes", [])),
    }


def bench_verify_overhead(programs, reps: int) -> Dict[str, object]:
    """Full-tier IR verification overhead on the fig6 variant set.

    ``cold_full_s`` verifies every variant with a fresh ``AnalysisManager``
    per run — paying CFG/domtree construction and the dataflow lints.
    ``warm_full_s`` re-verifies through one persistent manager, where every
    function resolves as a ``verify:full`` cache hit — the regime
    ``PassManager(verify_each=...)`` and the ``REPRO_VERIFY_IR`` post-link
    hook re-verify in.  Acceptance (checked structurally by --smoke only for
    the error count; the ratio is informational): warm full-tier
    verification stays under 10% of the uncached fig6 build phase.
    """
    from repro.analysis.manager import AnalysisManager
    from repro.analysis.static import verify

    gc.collect()
    start = time.perf_counter()
    variants = _build_variants(programs)
    build_s = time.perf_counter() - start

    def verify_all(tier: str, analyses):
        findings = []
        for variant in variants:
            findings.extend(verify(variant, tier=tier, analyses=analyses))
        return findings

    errors = sum(d.is_error for d in verify_all("full", None))

    structural_s = best_of(lambda: verify_all("structural", None), reps)
    cold_full_s = best_of(lambda: verify_all("full", AnalysisManager()), reps)
    manager = AnalysisManager()
    verify_all("full", manager)  # populate the verify:full cache entries
    warm_full_s = best_of(lambda: verify_all("full", manager), reps)

    return {
        "programs": [wp.name for wp in programs],
        "labels": list(MEASURE_LABELS),
        "variants": len(variants),
        "errors": errors,
        "build_s": round(build_s, 4),
        "structural_s": round(structural_s, 4),
        "cold_full_s": round(cold_full_s, 4),
        "warm_full_s": round(warm_full_s, 4),
        "warm_speedup": (round(cold_full_s / warm_full_s, 2)
                         if warm_full_s else None),
        "warm_vs_build_pct": (round(100.0 * warm_full_s / build_s, 2)
                              if build_s else None),
    }


def bench_disk_cache(programs) -> Dict[str, object]:
    """Save → reload round trip of the variant cache (REPRO_VARIANT_CACHE_DIR)."""
    directory = os.environ["REPRO_VARIANT_CACHE_DIR"]
    path = cache_file_path(directory)
    cache = VariantCache()
    if os.path.exists(path):
        try:
            cache = VariantCache.load(path)
        except Exception as error:
            # e.g. a file written before a version/key-schema bump: start
            # fresh (builds are deterministic) instead of killing the run
            print(f"disk cache: ignoring incompatible {path}: {error}",
                  file=sys.stderr)
    loaded_entries = len(cache)
    gc.collect()
    start = time.perf_counter()
    measure_overhead(programs, labels=MEASURE_LABELS, cache=cache)
    build_s = time.perf_counter() - start
    cache.save(path)
    reloaded = VariantCache.load(path)
    return {
        "path": path,
        "loaded_entries": loaded_entries,
        "saved_entries": len(cache),
        "round_trip_entries": len(reloaded),
        "round_trip_ok": len(reloaded) == len(cache) and len(reloaded) > 0,
        "build_s": round(build_s, 4),
    }


def check_results(results: Dict[str, object]) -> List[str]:
    """Structural (timing-independent) sanity checks for --smoke."""
    problems = []
    for key in REQUIRED_KEYS:
        if key not in results:
            problems.append(f"missing key {key!r}")
    cache = results.get("variant_cache", {})
    if cache and cache.get("fig8", {}).get("hits", 0) <= 0:
        problems.append("variant cache saw no figure-8 hits")
    fused = results.get("vm_superblock", {})
    if fused:
        for tier in ("legacy", "compiled", "superblock"):
            if tier not in fused.get("steady", {}).get("tiers", {}):
                problems.append(f"vm_superblock steady section missing the "
                                f"{tier} tier")
        identical = fused.get("fig67_batched", {}).get("identical", {})
        for tier in ("compiled", "superblock"):
            if not identical.get(tier, False):
                problems.append(f"batched fig6/7 {tier} rows diverged from "
                                f"the serial reference")
    e2e = results.get("fig6_end_to_end", {})
    if e2e and e2e.get("cache", {}).get("hits", 0) <= 0:
        problems.append("fig6 end-to-end loop never hit the variant cache")
    diff_phase = results.get("fig8_diff_phase", {})
    if diff_phase:
        identical = diff_phase.get("identical", {})
        if not identical.get("legacy", False):
            problems.append("legacy diff path diverged from the FeatureIndex path")
        if not identical.get("jobs2", False):
            problems.append("jobs=2 executor diverged from the serial run")
    sharded = results.get("fig67_sharded", {})
    if sharded:
        identical = sharded.get("identical", {})
        if not identical.get("cold_attach", False):
            problems.append("store-backed fig6/7 run diverged from the serial run")
        if not identical.get("warm_attach", False):
            problems.append("warm store attach (disk-read path) diverged "
                            "from the serial run")
        if not identical.get("jobs2", False):
            problems.append("sharded jobs=2 fig6/7 run diverged from the serial run")
        if not identical.get("jobs2_no_new_objects", False):
            problems.append("jobs=2 workers rebuilt variants a warm store already had")
        if sharded.get("warm_attach_rebuilds", -1) != 0:
            problems.append("a warm ArtifactStore attach rebuilt variants")
        store = sharded.get("store", {})
        if store.get("warm", {}).get("disk_hits", 0) <= 0:
            problems.append("warm store attach served no disk hits")
        if store.get("cold", {}).get("puts", 0) <= 0:
            problems.append("cold store run persisted no artifacts")
    fig8_sharded = results.get("fig8_function_sharded", {})
    if fig8_sharded:
        identical = fig8_sharded.get("identical", {})
        for name in ("cold", "jobs2", "warm"):
            if not identical.get(name, False):
                problems.append(f"fig8 function-sharded {name} run diverged "
                                f"from the serial reference")
        if fig8_sharded.get("warm_feature_rebuilds", -1) != 0:
            problems.append("a warm fig8 shard run rebuilt FeatureIndex payloads")
        warm = fig8_sharded.get("stats", {}).get("warm", {})
        if warm.get("units_scored", -1) != 0:
            problems.append("a warm fig8 shard run re-scored units the store "
                            "already held")
        if warm.get("units_from_store", 0) <= 0:
            problems.append("warm fig8 shard run adopted no stored diff payloads")
        if fig8_sharded.get("stats", {}).get("cold", {}).get(
                "diff_payloads_persisted", 0) <= 0:
            problems.append("cold fig8 shard run persisted no diff payloads")
    faults = results.get("fault_overhead", {})
    if faults:
        for name in ("supervised", "legacy"):
            if not faults.get("identical", {}).get(name, False):
                problems.append(f"fault_overhead {name} executor run "
                                f"diverged from the serial reference")
    overhead = results.get("verify_overhead", {})
    if overhead and overhead.get("errors", -1) != 0:
        problems.append("full-tier verification found errors on the fig6 "
                        "variant set")
    telemetry = results.get("telemetry_overhead", {})
    if telemetry:
        for name in ("untraced", "traced"):
            if not telemetry.get("identical", {}).get(name, False):
                problems.append(f"telemetry_overhead {name} run diverged "
                                f"from the serial reference")
        trace = telemetry.get("trace", {})
        if not trace.get("valid", False):
            problems.append("traced run produced no valid merged trace")
        elif (trace.get("coverage") or 0) < 0.95:
            problems.append(f"trace attributed only "
                            f"{trace.get('coverage')} of busy time to "
                            f"named phases (want >= 0.95)")
    remote = results.get("remote_store", {})
    if remote:
        for name, flag in sorted((remote.get("identical") or {}).items()):
            if not flag:
                problems.append(f"remote_store {name} run diverged from "
                                f"the serial reference")
        if remote.get("remote", {}).get("warm_executed", -1) != 0:
            problems.append("warm remote fig8 rerun re-executed journaled "
                            "shards")
        if remote.get("coordinated_remote", {}).get("executed", -1) != 0:
            problems.append("coordinated remote rerun re-executed "
                            "journaled shards")
        if remote.get("remote", {}).get("server", {}).get("cold", {}).get(
                "objects_written", 0) <= 0:
            problems.append("cold remote run wrote no objects through the "
                            "server")
        coalescing = remote.get("warm_read_coalescing", {})
        if (coalescing.get("objects_served", 0) > 8
                and not (coalescing.get("requests", 0)
                         < coalescing.get("objects_served", 0))):
            problems.append("warm remote reads were not coalesced "
                            "(requests >= objects served)")
    if os.environ.get("REPRO_VARIANT_CACHE_DIR"):
        disk = results.get("disk_cache")
        if not disk:
            problems.append("REPRO_VARIANT_CACHE_DIR set but no disk_cache section")
        elif not disk.get("round_trip_ok", False):
            problems.append("variant cache disk round trip failed")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer programs and reps (smoke run)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: minimal work, then verify the output "
                             "file structurally (no timing assertions)")
    parser.add_argument("--out", default="BENCH_results.json",
                        help="output path (default: BENCH_results.json)")
    args = parser.parse_args(argv)

    if args.smoke:
        vm_programs = spec2006_programs()[:1]
        loop_programs = spec2006_programs()[:1]
        reps = 1
        batch = 4
    elif args.quick:
        vm_programs = spec2006_programs()[:2]
        loop_programs = spec2006_programs()[:1]
        reps = 2
        batch = 8
    else:
        vm_programs = spec2006_programs()[:4] + spec2017_programs()[:2]
        loop_programs = spec2006_programs()[:3]
        reps = 5
        batch = 32

    results = {
        "schema": 10,
        "config": {"quick": bool(args.quick or args.smoke), "reps": reps,
                   "batch": batch,
                   "python": sys.version.split()[0],
                   "variant_cache_dir":
                       os.environ.get("REPRO_VARIANT_CACHE_DIR") or None,
                   "store_dir": os.environ.get("REPRO_STORE_DIR") or None},
        "vm": bench_vm(vm_programs, reps),
        "vm_superblock": bench_vm_superblock(vm_programs, loop_programs,
                                             reps, batch),
        "fig6_measure_loop": bench_fig6_measure_loop(loop_programs, reps),
        "fig6_end_to_end": bench_fig6_end_to_end(loop_programs,
                                                 max(2, reps // 2)),
        "pipeline": bench_pipeline(loop_programs, max(2, reps // 2)),
        "variant_cache": bench_variant_cache(loop_programs,
                                             max(1, reps // 2)),
        "fig8_diff_phase": bench_fig8_diff_phase(loop_programs,
                                                 max(1, reps // 2)),
        "fig67_sharded": bench_fig67_sharded(loop_programs,
                                             max(1, reps // 2)),
        "fig8_function_sharded": bench_fig8_function_sharded(
            loop_programs, max(1, reps // 2)),
        "fault_overhead": bench_fault_overhead(loop_programs,
                                               max(1, reps // 2)),
        "verify_overhead": bench_verify_overhead(loop_programs,
                                                 max(1, reps // 2)),
        "telemetry_overhead": bench_telemetry_overhead(loop_programs,
                                                       max(1, reps // 2)),
        "remote_store": bench_remote_store(loop_programs,
                                           max(1, reps // 2)),
    }
    if os.environ.get("REPRO_VARIANT_CACHE_DIR"):
        results["disk_cache"] = bench_disk_cache(loop_programs)

    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"vm:                {results['vm']['speedup']}x "
          f"({results['vm']['steps_per_sec_compiled']:,} steps/s compiled, "
          f"{results['vm']['steps_per_sec_legacy']:,} legacy)")
    sb = results["vm_superblock"]
    tiers = sb["steady"]["tiers"]
    fb = sb["fig67_batched"]
    print(f"vm superblock:     steady {tiers['superblock']['steps_per_sec']:,}"
          f" steps/s vs compiled {tiers['compiled']['steps_per_sec']:,} "
          f"({sb['steady_superblock_vs_compiled']}x); fig6/7 batched "
          f"x{fb['batch']}: compiled {fb['compiled_s']}s -> superblock "
          f"{fb['superblock_s']}s ({fb['speedup']}x, "
          f"identical={fb['identical']})")
    print(f"fig6 measure loop: {results['fig6_measure_loop']['speedup']}x")
    print(f"fig6 end to end:   {results['fig6_end_to_end']['speedup']}x "
          f"(compiled {results['fig6_end_to_end']['compiled_s']}s, "
          f"cache hit rate {results['fig6_end_to_end']['cache']['hit_rate']})")
    print(f"pipeline build:    "
          f"{results['pipeline']['obfuscate_optimize_lower_s']}s (uncached)")
    vc = results["variant_cache"]
    print(f"variant cache:     cold {vc['cold_s']}s -> warm {vc['warm_s']}s "
          f"({vc['build_speedup']}x); fig8 hit rate {vc['fig8']['hit_rate']}")
    dp = results["fig8_diff_phase"]
    print(f"fig8 diff phase:   legacy {dp['legacy_s']}s -> indexed "
          f"{dp['indexed_s']}s ({dp['speedup']}x, cold {dp['indexed_cold_s']}s, "
          f"jobs=2 {dp['jobs2_s']}s, identical={dp['identical']})")
    fs = results["fig67_sharded"]
    print(f"fig67 sharded:     serial {fs['serial_s']}s, cold attach "
          f"{fs['cold_attach_s']}s -> warm attach {fs['warm_attach_s']}s "
          f"({fs['warm_attach_speedup']}x, {fs['warm_attach_rebuilds']} "
          f"rebuilds), jobs=2 {fs['jobs2_s']}s, "
          f"identical={fs['identical']}")
    f8 = results["fig8_function_sharded"]
    print(f"fig8 fn-sharded:   serial {f8['serial_s']}s, cold shards "
          f"{f8['cold_shard_s']}s, jobs=2 {f8['jobs2_s']}s -> warm "
          f"{f8['warm_shard_s']}s ({f8['warm_shard_speedup']}x, "
          f"{f8['warm_feature_rebuilds']} feature rebuilds, "
          f"identical={f8['identical']})")
    fo = results["fault_overhead"]
    print(f"fault overhead:    legacy {fo['legacy_s']}s -> supervised "
          f"{fo['supervised_s']}s ({fo['overhead_pct']}% overhead, "
          f"identical={fo['identical']})")
    vo = results["verify_overhead"]
    print(f"verify overhead:   cold full {vo['cold_full_s']}s -> warm "
          f"{vo['warm_full_s']}s ({vo['warm_speedup']}x; structural "
          f"{vo['structural_s']}s); warm = {vo['warm_vs_build_pct']}% of "
          f"the {vo['build_s']}s build phase")
    to = results["telemetry_overhead"]
    print(f"telemetry:         vm steady {to['vm_steady']['overhead_pct']}% "
          f"({to['vm_steady']['steps_per_sec_on']:,} steps/s traced); fig8 "
          f"jobs=2 {to['fig8_jobs2']['overhead_pct']}% "
          f"(off {to['fig8_jobs2']['off_s']}s -> on "
          f"{to['fig8_jobs2']['on_s']}s); trace coverage "
          f"{to['trace'].get('coverage')}, identical={to['identical']}")
    rs = results["remote_store"]
    print(f"remote store:      local cold {rs['local']['cold_s']}s / warm "
          f"{rs['local']['warm_s']}s; remote cold {rs['remote']['cold_s']}s "
          f"/ warm {rs['remote']['warm_s']}s "
          f"(overhead {rs['remote_overhead']['cold_pct']}% cold, "
          f"{rs['remote_overhead']['warm_pct']}% warm); coordinated "
          f"{rs['coordinated_remote']['seconds']}s "
          f"({rs['coordinated_remote']['resumed']} resumed); warm reads "
          f"{rs['warm_read_coalescing']['objects_per_request']} "
          f"objects/request; identical={rs['identical']}")
    if "disk_cache" in results:
        dc = results["disk_cache"]
        print(f"disk cache:        {dc['saved_entries']} entries -> "
              f"{dc['path']} (round trip ok: {dc['round_trip_ok']})")
    print(f"wrote {args.out}")

    if args.smoke:
        with open(args.out) as fh:
            reread = json.load(fh)
        problems = check_results(reread)
        if problems:
            for problem in problems:
                print(f"SMOKE FAIL: {problem}", file=sys.stderr)
            return 1
        print(f"smoke ok: {args.out} contains "
              f"{', '.join(REQUIRED_KEYS)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
