"""Performance micro-benchmarks for the obfuscate→execute→measure loop.

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf/run_bench.py [--quick] [--out PATH]

or via ``scripts/bench.sh``.  Writes ``BENCH_results.json`` so subsequent PRs
can diff the perf trajectory.  Three metrics are tracked:

* **vm** — steps/second of the interpreter on the Figure-6 workloads,
  compiled dispatch vs. the legacy ``isinstance``-ladder path (kept in-tree
  as the reference semantics);
* **fig6_measure_loop** — the overhead-*measurement* loop of Figures 6/7:
  executing every built variant in the VM to collect dynamic cycle counts,
  compiled vs. legacy dispatch;
* **fig6_end_to_end** — the same loop including the build phases
  (obfuscate, optimize, lower), which exercises the AnalysisManager caching;
* **pipeline** — wall time of the build phases alone.

All workloads are deterministic (profile-seeded), so the only
run-to-run variance is machine noise; every timing is a best-of-``reps``.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from typing import Callable, Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro.evaluation.overhead import measure_overhead  # noqa: E402
from repro.opt.pipelines import optimize_program        # noqa: E402
from repro.backend.lowering import lower_program        # noqa: E402
from repro.core.obfuscator import obfuscate             # noqa: E402
from repro.vm.machine import run_program                # noqa: E402
from repro.workloads.suites import (spec2006_programs,  # noqa: E402
                                    spec2017_programs)

MEASURE_LABELS = ("fission", "fufi.ori")


def best_of(fn: Callable[[], object], reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        gc.collect()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_vm(programs, reps: int) -> Dict[str, object]:
    built = [wp.build() for wp in programs]
    # verify both dispatchers agree before timing anything
    steps = 0
    for program in built:
        legacy = run_program(program, compiled=False)
        fast = run_program(program, compiled=True)
        assert legacy.observable() == fast.observable()
        assert legacy.cycles == fast.cycles and legacy.steps == fast.steps
        steps += legacy.steps

    legacy_s = best_of(
        lambda: [run_program(p, compiled=False) for p in built], reps)
    compiled_s = best_of(
        lambda: [run_program(p, compiled=True) for p in built], reps)
    return {
        "programs": [wp.name for wp in programs],
        "steps": steps,
        "legacy_s": round(legacy_s, 4),
        "compiled_s": round(compiled_s, 4),
        "steps_per_sec_legacy": int(steps / legacy_s),
        "steps_per_sec_compiled": int(steps / compiled_s),
        "speedup": round(legacy_s / compiled_s, 2),
    }


def _build_variants(programs) -> List:
    """The build phase of the fig6/fig7 loop: every variant of every program."""
    variants = []
    for wp in programs:
        baseline = optimize_program(wp.build())
        lower_program(baseline)
        variants.append(baseline)
        for label in MEASURE_LABELS:
            result = obfuscate(wp.build(), mode=label)
            optimized = optimize_program(result.program)
            lower_program(optimized)
            variants.append(optimized)
    return variants


def bench_fig6_measure_loop(programs, reps: int) -> Dict[str, object]:
    variants = _build_variants(programs)
    legacy_s = best_of(
        lambda: [run_program(v, compiled=False) for v in variants], reps)
    compiled_s = best_of(
        lambda: [run_program(v, compiled=True) for v in variants], reps)
    return {
        "programs": [wp.name for wp in programs],
        "labels": list(MEASURE_LABELS),
        "variants": len(variants),
        "legacy_s": round(legacy_s, 4),
        "compiled_s": round(compiled_s, 4),
        "speedup": round(legacy_s / compiled_s, 2),
    }


def bench_fig6_end_to_end(programs, reps: int) -> Dict[str, object]:
    def loop(dispatch: str):
        os.environ["REPRO_VM_DISPATCH"] = dispatch
        try:
            measure_overhead(programs, labels=MEASURE_LABELS)
        finally:
            os.environ.pop("REPRO_VM_DISPATCH", None)

    legacy_s = best_of(lambda: loop("legacy"), reps)
    compiled_s = best_of(lambda: loop("compiled"), reps)
    return {
        "programs": [wp.name for wp in programs],
        "labels": list(MEASURE_LABELS),
        "legacy_s": round(legacy_s, 4),
        "compiled_s": round(compiled_s, 4),
        "speedup": round(legacy_s / compiled_s, 2),
    }


def bench_pipeline(programs, reps: int) -> Dict[str, object]:
    wall = best_of(lambda: _build_variants(programs), reps)
    return {
        "programs": [wp.name for wp in programs],
        "labels": list(MEASURE_LABELS),
        "obfuscate_optimize_lower_s": round(wall, 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer programs and reps (smoke run)")
    parser.add_argument("--out", default="BENCH_results.json",
                        help="output path (default: BENCH_results.json)")
    args = parser.parse_args(argv)

    if args.quick:
        vm_programs = spec2006_programs()[:2]
        loop_programs = spec2006_programs()[:1]
        reps = 2
    else:
        vm_programs = spec2006_programs()[:4] + spec2017_programs()[:2]
        loop_programs = spec2006_programs()[:3]
        reps = 5

    results = {
        "schema": 1,
        "config": {"quick": bool(args.quick), "reps": reps,
                   "python": sys.version.split()[0]},
        "vm": bench_vm(vm_programs, reps),
        "fig6_measure_loop": bench_fig6_measure_loop(loop_programs, reps),
        "fig6_end_to_end": bench_fig6_end_to_end(loop_programs,
                                                 max(2, reps // 2)),
        "pipeline": bench_pipeline(loop_programs, max(2, reps // 2)),
    }

    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"vm:                {results['vm']['speedup']}x "
          f"({results['vm']['steps_per_sec_compiled']:,} steps/s compiled, "
          f"{results['vm']['steps_per_sec_legacy']:,} legacy)")
    print(f"fig6 measure loop: {results['fig6_measure_loop']['speedup']}x")
    print(f"fig6 end to end:   {results['fig6_end_to_end']['speedup']}x")
    print(f"pipeline build:    "
          f"{results['pipeline']['obfuscate_optimize_lower_s']}s")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
