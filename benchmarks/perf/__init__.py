"""Performance micro-benchmarks (not pytest tests — see run_bench.py)."""
