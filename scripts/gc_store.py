#!/usr/bin/env python
"""Generation-aware mark-and-sweep for an artifact-store tree.

A store tree only ever grows: every matrix run appends variants, binaries,
feature payloads, per-function diff payloads and journaled shard results,
and nothing ever deletes them.  That is the right default — artifacts are
deterministic and cheap to keep — but a long-lived tree (or a store
server's tree feeding a fleet) accumulates objects no journal references
any more: superseded matrices, abandoned label sets, chaos-test leftovers.
``gc_store`` reclaims exactly those.

**Mark.**  The roots are the run journals under ``runs/<run_id>.jsonl`` —
the same files resume reads — so *live* means journal-reachable:

* every journaled shard digest marks its ``shard`` object live;
* each live shard object's envelope carries its value-based key, and the
  key prefix (``diffshard`` / ``fig9shard`` / ``fig67shard``) determines
  which other objects that shard's re-materialisation would read: the
  baseline/variant pairs (kinds ``variant`` + ``binary``), their feature
  payloads, and — for diff shards — the pair's roster/whole/unit diff
  payloads (units enumerated from the stored roster, exactly the reads
  :mod:`repro.evaluation.diff_sharding` performs warm);
* an unreadable shard envelope or an unknown key prefix flips the sweep
  **conservative**: only unreferenced ``shard`` objects are collected and
  every other kind is kept, because reachability can no longer be derived.
  Unknown *kinds* are never swept at all.

**Sweep** deletes every unmarked object, then rewrites the
:class:`~repro.store.generation_log.GenerationLog` ledger to the survivors
and prunes emptied shard directories.  Two protections soften the sweep:

* ``--grace SECONDS`` (default 3600) keeps any object younger than the
  window, whatever its reachability — a concurrent run writes objects
  *before* journaling the shard that references them, and the grace window
  is what makes that ordering safe;
* ``--keep-generations N`` keeps every object whose ledger line was written
  in the newest ``N`` tree generations (the ``gen`` stamp on each ledger
  line), journal-referenced or not — ledger lines without a stamp (older
  trees) are treated as newest, i.e. kept.

``--dry-run`` computes the full report without deleting anything.  Exit
status: 0 on success (including nothing-to-collect), 2 when the tree
cannot be scanned.  The tree stays valid for concurrent *readers*
throughout (objects vanish atomically; a vanished object reads as a miss
and rebuilds); concurrent writers are protected by the grace window.

Usage:
    PYTHONPATH=src python scripts/gc_store.py /path/to/store --dry-run
    PYTHONPATH=src python scripts/gc_store.py /path/to/store --json
    PYTHONPATH=src python scripts/gc_store.py /path/to/store --grace 600
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import time
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.evaluation.bintuner_compare import OPT_LEVELS
from repro.evaluation.checkpoint import RUNS_DIR, _parse_journal
from repro.opt.pass_manager import OptOptions
from repro.store import (CORRUPT_READ_ERRORS, KEY_SCHEMA, OBJECTS_DIR,
                         STORE_SCHEMA, GenerationLog, store_digest)
from repro.store.artifact_store import (KIND_BINARY, KIND_DIFF, KIND_FEATURES,
                                        KIND_SHARD, KIND_VARIANT)
from repro.store.backend import LocalBackend
from repro.store.diff_payloads import roster_key, unit_key, whole_key
from repro.store.feature_payloads import features_key
from repro.store.keys import config_cache_key
from repro.toolchain import obfuscator_for

#: The kinds this tool understands and may sweep.  Anything else in the
#: tree was written by a newer pipeline and is left strictly alone.
KNOWN_KINDS = (KIND_VARIANT, KIND_BINARY, KIND_FEATURES, KIND_DIFF,
               KIND_SHARD)

#: Default grace window (seconds): objects younger than this are never
#: collected, so a concurrent run's not-yet-journaled writes survive.
DEFAULT_GRACE = 3600.0


def _decode_envelope(data: bytes, kind: str) -> Optional[object]:
    """The ``key`` of one serialized envelope, or ``None`` on damage.

    GC is read-only over object payloads — damage is *not* quarantined
    here (that is ``fsck_store``'s job); it just makes the sweep
    conservative.
    """
    try:
        envelope = pickle.loads(data)
    except CORRUPT_READ_ERRORS:
        return None
    if (not isinstance(envelope, dict)
            or envelope.get("store_schema") != STORE_SCHEMA
            or envelope.get("key_schema") != KEY_SCHEMA
            or envelope.get("kind") != kind
            or "key" not in envelope):
        return None
    return envelope


def _mark(live: Set[Tuple[str, str]], kind: str, key: object) -> None:
    live.add((kind, store_digest(kind, key)))


def _mark_variant(live: Set[Tuple[str, str]], variant_key: Tuple) -> None:
    """A built variant is three objects: artifact, lowered binary, features."""
    _mark(live, KIND_VARIANT, variant_key)
    _mark(live, KIND_BINARY, variant_key)
    _mark(live, KIND_FEATURES, features_key(variant_key))


def _with_config(variant_key: Tuple, config: object) -> Tuple:
    """``variant_key`` with its configuration component replaced."""
    return variant_key[:4] + (config,) + variant_key[5:]


def _with_options(variant_key: Tuple, frozen_options: object) -> Tuple:
    """``variant_key`` with its optimization-options component replaced."""
    return variant_key[:5] + (frozen_options,)


def _freeze_options(options: OptOptions) -> object:
    from repro.store.keys import _freeze
    return _freeze(options)


def _roster_units(backend: LocalBackend, pair_key: Tuple) -> Iterable[str]:
    """The unit roster of one diff pair, read straight off the tree."""
    digest = store_digest(KIND_DIFF, roster_key(pair_key))
    data = backend.get(KIND_DIFF, digest)
    if data is None:
        return ()
    envelope = _decode_envelope(data, KIND_DIFF)
    if envelope is None:
        return ()
    payload = envelope.get("payload")
    if not isinstance(payload, dict):
        return ()
    units = payload.get("units")
    if not isinstance(units, tuple):
        return ()
    return [unit for unit in units if isinstance(unit, str)]


def _derive_from_shard_key(backend: LocalBackend, shard_key: object,
                           live: Set[Tuple[str, str]]) -> bool:
    """Mark everything one journaled shard's warm re-materialisation reads.

    Returns ``False`` when the key shape is unknown — the caller then
    degrades the whole sweep to conservative mode.
    """
    if not isinstance(shard_key, tuple) or not shard_key:
        return False
    prefix = shard_key[0]

    if prefix == "diffshard" and len(shard_key) == 6:
        _tag, differ_key, base_vk, label_vk, _index, _count = shard_key
        _mark_variant(live, tuple(base_vk))
        _mark_variant(live, tuple(label_vk))
        pair_key = (KIND_DIFF, tuple(differ_key),
                    tuple(base_vk), tuple(label_vk))
        _mark(live, KIND_DIFF, roster_key(pair_key))
        _mark(live, KIND_DIFF, whole_key(pair_key))
        for unit in _roster_units(backend, pair_key):
            _mark(live, KIND_DIFF, unit_key(pair_key, unit))
        return True

    if prefix == "fig9shard" and len(shard_key) == 4:
        _tag, base_vk, _protection, _iterations = shard_key
        base_vk = tuple(base_vk)
        # the shard reads the four opt-level references, the O2 baseline
        # (for the overhead run) and the Khaos fufi.all build
        _mark_variant(live, base_vk)
        for level in OPT_LEVELS:
            options = OptOptions(level=level, lto=level >= 2)
            _mark_variant(live, _with_options(base_vk,
                                              _freeze_options(options)))
        _mark_variant(live, _with_config(
            base_vk, config_cache_key(obfuscator_for("fufi.all"))))
        return True

    if prefix == "fig67shard" and len(shard_key) == 3:
        _tag, base_vk, labels = shard_key
        base_vk = tuple(base_vk)
        _mark_variant(live, base_vk)
        if not isinstance(labels, tuple):
            return False
        for label in labels:
            if not isinstance(label, str):
                return False
            if label == "baseline":
                continue
            _mark_variant(live, _with_config(
                base_vk, config_cache_key(obfuscator_for(label))))
        return True

    return False


def _load_roots(root: str) -> Tuple[Dict[str, Set[str]], int]:
    """Journaled shard digests per run journal, plus the journal count."""
    roots: Dict[str, Set[str]] = {}
    runs_dir = os.path.join(root, RUNS_DIR)
    journals = 0
    if not os.path.isdir(runs_dir):
        return roots, journals
    for name in sorted(os.listdir(runs_dir)):
        if not name.endswith(".jsonl"):
            continue
        journals += 1
        try:
            with open(os.path.join(runs_dir, name), "r",
                      encoding="utf-8") as fh:
                text = fh.read()
        except OSError:
            continue
        digests = _parse_journal(text)
        if digests:
            roots[name] = digests
    return roots, journals


def _prune_empty_dirs(root: str) -> int:
    """Remove emptied ``<aa>`` shard and kind directories; count removals."""
    pruned = 0
    objects_root = os.path.join(root, OBJECTS_DIR)
    if not os.path.isdir(objects_root):
        return pruned
    for kind in sorted(os.listdir(objects_root)):
        kind_dir = os.path.join(objects_root, kind)
        if not os.path.isdir(kind_dir):
            continue
        for shard in sorted(os.listdir(kind_dir)):
            shard_dir = os.path.join(kind_dir, shard)
            if os.path.isdir(shard_dir) and not os.listdir(shard_dir):
                try:
                    os.rmdir(shard_dir)
                    pruned += 1
                except OSError:
                    pass
        if os.path.isdir(kind_dir) and not os.listdir(kind_dir):
            try:
                os.rmdir(kind_dir)
                pruned += 1
            except OSError:
                pass
    return pruned


def collect(root: str, dry_run: bool = False, grace: float = DEFAULT_GRACE,
            keep_generations: int = 0) -> Dict[str, object]:
    """Mark-and-sweep ``root``; returns the report dict."""
    log = GenerationLog.load(root)  # ValueError on damage: caller reports
    if log is None:
        raise ValueError(f"{root!r} has no generation log — not a store "
                         f"tree (or never written to); refusing to sweep")
    if log.store_schema != STORE_SCHEMA or log.key_schema != KEY_SCHEMA:
        raise ValueError(
            f"tree stamped schema {log.store_schema}/{log.key_schema} but "
            f"this pipeline speaks {STORE_SCHEMA}/{KEY_SCHEMA}; a GC built "
            f"on mismatched key derivation would sweep live objects")
    backend = LocalBackend(root)

    # -- mark ---------------------------------------------------------------------
    roots, journals = _load_roots(root)
    root_digests: Set[str] = set()
    for digests in roots.values():
        root_digests |= digests
    live: Set[Tuple[str, str]] = set()
    conservative_causes: List[str] = []
    for digest in sorted(root_digests):
        live.add((KIND_SHARD, digest))
        data = backend.get(KIND_SHARD, digest)
        if data is None:
            continue  # journaled but lost: nothing reachable through it
        envelope = _decode_envelope(data, KIND_SHARD)
        if envelope is None:
            conservative_causes.append(f"unreadable shard {digest[:12]}")
            continue
        if not _derive_from_shard_key(backend, envelope["key"], live):
            conservative_causes.append(
                f"unknown shard key shape in {digest[:12]}")
    conservative = bool(conservative_causes)

    # -- protection windows -------------------------------------------------------
    now = time.time()
    keep_gen_floor = None
    if keep_generations > 0:
        keep_gen_floor = log.generation - keep_generations + 1

    # -- sweep --------------------------------------------------------------------
    scanned = 0
    kept_live = 0
    kept_grace = 0
    kept_generation = 0
    kept_conservative = 0
    kept_unknown_kind = 0
    swept: Dict[str, int] = {}
    swept_refs: List[Tuple[str, str]] = []
    bytes_reclaimed = 0
    for kind, digest in backend.list_refs():
        scanned += 1
        if kind not in KNOWN_KINDS:
            kept_unknown_kind += 1
            continue
        if (kind, digest) in live:
            kept_live += 1
            continue
        if conservative and kind != KIND_SHARD:
            kept_conservative += 1
            continue
        if keep_gen_floor is not None:
            entry = log.entries.get(digest)
            gen = entry.get("gen") if entry else None
            if entry is not None and (gen is None or gen >= keep_gen_floor):
                kept_generation += 1
                continue
        path = backend.object_path(kind, digest)
        try:
            stat = os.stat(path)
        except OSError:
            continue  # raced away already
        if grace > 0 and now - stat.st_mtime < grace:
            kept_grace += 1
            continue
        if not dry_run:
            if not backend.delete(kind, digest):
                continue
        swept[kind] = swept.get(kind, 0) + 1
        swept_refs.append((kind, digest))
        bytes_reclaimed += stat.st_size

    # -- compaction ---------------------------------------------------------------
    pruned_dirs = 0
    ledger_dropped = 0
    if not dry_run and swept_refs:
        for _kind, digest in swept_refs:
            if log.entries.pop(digest, None) is not None:
                ledger_dropped += 1
        log.rewrite_entries(root)
        pruned_dirs = _prune_empty_dirs(root)

    return {
        "root": os.path.abspath(root),
        "dry_run": bool(dry_run),
        "generation": log.generation,
        "grace_seconds": grace,
        "keep_generations": keep_generations,
        "conservative": conservative,
        "conservative_causes": conservative_causes,
        "counts": {
            "journals": journals,
            "roots": len(root_digests),
            "objects_scanned": scanned,
            "live": kept_live,
            "kept_grace": kept_grace,
            "kept_generation": kept_generation,
            "kept_conservative": kept_conservative,
            "kept_unknown_kind": kept_unknown_kind,
            "swept": sum(swept.values()),
            "ledger_dropped": ledger_dropped,
            "pruned_dirs": pruned_dirs,
        },
        "swept_by_kind": dict(sorted(swept.items())),
        "bytes_reclaimed": bytes_reclaimed,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="mark-and-sweep GC for an artifact-store tree")
    parser.add_argument("root", help="store tree root (REPRO_STORE_DIR, or "
                                     "a store server's --root)")
    parser.add_argument("--dry-run", action="store_true",
                        help="report what would be collected; delete nothing")
    parser.add_argument("--grace", type=float, default=DEFAULT_GRACE,
                        metavar="SECONDS",
                        help="never collect objects younger than this "
                             f"(default {DEFAULT_GRACE:.0f}; 0 disables)")
    parser.add_argument("--keep-generations", type=int, default=0,
                        metavar="N",
                        help="keep every object ledgered in the newest N "
                             "tree generations, referenced or not")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the full report as JSON")
    args = parser.parse_args(argv)

    if not os.path.isdir(args.root):
        print(f"gc_store: {args.root}: not a directory", file=sys.stderr)
        return 2
    try:
        report = collect(args.root, dry_run=args.dry_run, grace=args.grace,
                         keep_generations=args.keep_generations)
    except ValueError as error:
        print(f"gc_store: {error}", file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        counts = report["counts"]
        verb = "would sweep" if report["dry_run"] else "swept"
        print(f"gc_store: {report['root']} (generation "
              f"{report['generation']})")
        print(f"  roots: {counts['roots']} journaled shards across "
              f"{counts['journals']} runs")
        print(f"  objects: {counts['objects_scanned']} scanned, "
              f"{counts['live']} live, {counts['kept_grace']} in grace, "
              f"{counts['kept_generation']} generation-kept")
        if report["conservative"]:
            print(f"  CONSERVATIVE sweep "
                  f"({'; '.join(report['conservative_causes'])}): "
                  f"{counts['kept_conservative']} kept unswept")
        by_kind = ", ".join(f"{kind}: {count}" for kind, count
                            in report["swept_by_kind"].items()) or "nothing"
        print(f"  {verb}: {counts['swept']} objects "
              f"({report['bytes_reclaimed']} bytes) — {by_kind}")
        if counts["ledger_dropped"] or counts["pruned_dirs"]:
            print(f"  compacted: {counts['ledger_dropped']} ledger entries, "
                  f"{counts['pruned_dirs']} empty dirs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
