#!/usr/bin/env python
"""Seeded chaos check: the fig8 matrix under injected faults, bit-identical.

The CI chaos job's driver.  Runs the figure-8 function-sharded matrix three
times and requires all of them to agree with the fault-free serial
reference driver:

1. **reference** — ``measure_precision`` (the serial differential
   reference), no store, no executor, no faults;
2. **chaos** — ``measure_precision_sharded`` with ``jobs=2`` over a fresh
   store tree, with seeded worker crashes and store corruption injected
   (``worker_crash:p=0.2,seed=7;store_corrupt:p=0.1,seed=7`` by default):
   the supervised executor must retry/respawn through the crashes and the
   store must quarantine + rebuild through the corruption, and the merged
   report must still be **bit-identical** to the reference;
3. **resume** — the same matrix again over the same tree with faults off:
   every shard must revive from the run journal (zero executed), proving
   the checkpoint layer journaled through the chaos.

Finally ``fsck_store.py --repair`` must leave the tree clean (exit 0) —
corrupt objects the run never re-read get quarantined offline, and the
ledger/journals reconcile.

Exit status 0 only if every phase holds.  Runs in minutes on two
workloads × two labels × two tools; scale with the flags.

Usage:
    PYTHONPATH=src python scripts/chaos_check.py
    PYTHONPATH=src python scripts/chaos_check.py --workloads 3 --jobs 4
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
import tempfile
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="seeded fig8 chaos check")
    parser.add_argument("--workloads", type=int, default=2)
    parser.add_argument("--labels", default="fission,fufi.ori")
    parser.add_argument("--tools", type=int, default=2,
                        help="how many diffing tools to include")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--faults",
                        default="worker_crash:p=0.2,seed=7;"
                                "store_corrupt:p=0.1,seed=7")
    parser.add_argument("--retries", type=int, default=10,
                        help="per-task retry budget; a pool break burns one "
                             "for every in-flight task, so chaos runs need "
                             "headroom over the nominal crash count")
    parser.add_argument("--keep-tree", action="store_true",
                        help="print and keep the store tree for inspection")
    args = parser.parse_args(argv)

    # chaos knobs must be in the environment before any worker spawns;
    # the reference run below explicitly clears them for itself
    os.environ["REPRO_TASK_BACKOFF"] = "0.01"
    os.environ["REPRO_TASK_RETRIES"] = str(args.retries)
    # keep the pool path exercised: under a 20% crash rate the default
    # serial-degradation threshold trips early by design, which is correct
    # but leaves most of the matrix un-chaosed
    os.environ["REPRO_MAX_POOL_FAILURES"] = "10"
    os.environ.pop("REPRO_JOBS", None)
    os.environ.pop("REPRO_STORE_DIR", None)
    os.environ.pop("REPRO_VARIANT_CACHE_DIR", None)
    os.environ.pop("REPRO_FAULTS", None)

    from repro.diffing import all_differs
    from repro.evaluation import measure_precision
    from repro.evaluation.checkpoint import ShardRunStats
    from repro.evaluation.diff_sharding import (DiffShardStats,
                                                measure_precision_sharded)
    from repro.evaluation.executor import reset_worker_cache
    from repro.faults import reset_injector
    from repro.workloads.suites import spec2006_programs

    workloads = spec2006_programs()[:args.workloads]
    labels = tuple(label.strip() for label in args.labels.split(",")
                   if label.strip())
    differs = all_differs()[:args.tools]

    def rows(report):
        return [(r.program, r.suite, r.tool, r.label, r.precision,
                 r.similarity_score) for r in report.rows]

    print(f"chaos_check: {len(workloads)} workloads x {labels} x "
          f"{[d.name for d in differs]}, jobs={args.jobs}, "
          f"faults={args.faults!r}")

    # 1. fault-free serial reference (no store, no executor involvement)
    reset_worker_cache()
    reference = rows(measure_precision(workloads, labels, differs))
    print(f"  reference: {len(reference)} rows")

    tree = tempfile.mkdtemp(prefix="chaos-store-")
    failures = 0
    try:
        # 2. chaos run: crashes + corruption over a fresh shared tree
        os.environ["REPRO_STORE_DIR"] = tree
        os.environ["REPRO_FAULTS"] = args.faults
        reset_worker_cache()
        reset_injector()
        stats = DiffShardStats()
        chaos_run = ShardRunStats()
        chaos = rows(measure_precision_sharded(
            workloads, labels, differs, jobs=args.jobs, stats=stats,
            run_stats=chaos_run))
        if chaos == reference:
            print(f"  chaos run: bit-identical "
                  f"({chaos_run.executed} shards executed, "
                  f"{stats.units_scored} units scored)")
        else:
            print("  chaos run: REPORT DIVERGED FROM SERIAL REFERENCE")
            failures += 1

        # 3. resume over the same tree, faults off: every journaled unit is
        # served from the store, zero units re-scored.  (A shard whose
        # *journal object* was itself a corruption victim re-executes as
        # pure store reads — the manifest is advisory, the store is the
        # truth — so the strict assertion is on scored units, not shards.)
        os.environ.pop("REPRO_FAULTS", None)
        reset_worker_cache()
        reset_injector()
        resumed_stats = DiffShardStats()
        resume_run = ShardRunStats()
        resumed = rows(measure_precision_sharded(
            workloads, labels, differs, jobs=args.jobs, stats=resumed_stats,
            run_stats=resume_run))
        ok = (resumed == reference and resumed_stats.units_scored == 0)
        if ok:
            print(f"  resume: {resume_run.resumed}/{resume_run.planned} "
                  f"shards revived from the journal "
                  f"({resume_run.executed} re-read from store), "
                  f"zero units re-scored")
        else:
            print(f"  resume: FAILED (executed={resume_run.executed}, "
                  f"resumed={resume_run.resumed}/{resume_run.planned}, "
                  f"units_scored={resumed_stats.units_scored}, "
                  f"identical={resumed == reference})")
            failures += 1

        # 4. the tree must fsck clean after repairs
        script = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              "fsck_store.py")
        result = subprocess.run([sys.executable, script, "--repair", tree],
                                env=dict(os.environ), capture_output=True,
                                text=True)
        sys.stdout.write(result.stdout)
        if result.returncode != 0:
            sys.stderr.write(result.stderr)
            print("  fsck: FAILED")
            failures += 1
        else:
            print("  fsck: clean")
    finally:
        os.environ.pop("REPRO_STORE_DIR", None)
        os.environ.pop("REPRO_FAULTS", None)
        if args.keep_tree:
            print(f"  store tree kept at {tree}")
        else:
            shutil.rmtree(tree, ignore_errors=True)

    print("chaos_check: OK" if not failures
          else f"chaos_check: {failures} phase(s) FAILED")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
