#!/usr/bin/env python
"""Seeded chaos check: the fig8 matrix under injected faults, bit-identical.

The CI chaos job's driver.  Runs the figure-8 function-sharded matrix three
times and requires all of them to agree with the fault-free serial
reference driver:

1. **reference** — ``measure_precision`` (the serial differential
   reference), no store, no executor, no faults;
2. **chaos** — ``measure_precision_sharded`` with ``jobs=2`` over a fresh
   store tree, with seeded worker crashes and store corruption injected
   (``worker_crash:p=0.2,seed=7;store_corrupt:p=0.1,seed=7`` by default):
   the supervised executor must retry/respawn through the crashes and the
   store must quarantine + rebuild through the corruption, and the merged
   report must still be **bit-identical** to the reference;
3. **resume** — the same matrix again over the same tree with faults off:
   every shard must revive from the run journal (zero executed), proving
   the checkpoint layer journaled through the chaos.

Finally ``fsck_store.py --repair`` must leave the tree clean (exit 0) —
corrupt objects the run never re-read get quarantined offline, and the
ledger/journals reconcile.

``--json`` emits a machine-readable report on stdout (the human narration
moves to stderr): per-phase wall times and row counts, the supervision /
fault / quarantine counters from the run's merged telemetry
(``REPRO_TRACE`` is forced on so the counters exist), and the telemetry
run directory for ``trace_report.py``.

Exit status 0 only if every phase holds.  Runs in minutes on two
workloads × two labels × two tools; scale with the flags.

Usage:
    PYTHONPATH=src python scripts/chaos_check.py
    PYTHONPATH=src python scripts/chaos_check.py --workloads 3 --jobs 4
    PYTHONPATH=src python scripts/chaos_check.py --json > chaos.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

#: Telemetry counter prefixes worth surfacing in the ``--json`` report.
COUNTER_PREFIXES = ("executor.", "faults.", "checkpoint.",
                    "store.corrupt_reads", "store.quarantined")


def _latest_run_dir(tree: str) -> Optional[str]:
    telemetry = os.path.join(tree, "telemetry")
    try:
        runs = [os.path.join(telemetry, name)
                for name in os.listdir(telemetry)]
    except OSError:
        return None
    runs = [run for run in runs if os.path.isdir(run)]
    return max(runs, key=os.path.getmtime) if runs else None


def _merged_counters(tree: str) -> Dict[str, Any]:
    run_dir = _latest_run_dir(tree)
    if run_dir is None:
        return {}
    try:
        with open(os.path.join(run_dir, "metrics.json"),
                  encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return {}
    counters = (payload.get("merged") or {}).get("counters") or {}
    return {name: value for name, value in sorted(counters.items())
            if name.startswith(COUNTER_PREFIXES)}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="seeded fig8 chaos check")
    parser.add_argument("--workloads", type=int, default=2)
    parser.add_argument("--labels", default="fission,fufi.ori")
    parser.add_argument("--tools", type=int, default=2,
                        help="how many diffing tools to include")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--faults",
                        default="worker_crash:p=0.2,seed=7;"
                                "store_corrupt:p=0.1,seed=7")
    parser.add_argument("--retries", type=int, default=10,
                        help="per-task retry budget; a pool break burns one "
                             "for every in-flight task, so chaos runs need "
                             "headroom over the nominal crash count")
    parser.add_argument("--remote", action="store_true",
                        help="serve the tree through a loopback store "
                             "server and run the chaos/resume phases "
                             "against REPRO_STORE_URL, with remote_fault "
                             "added to the injected faults")
    parser.add_argument("--keep-tree", action="store_true",
                        help="print and keep the store tree for inspection")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="structured report on stdout, narration on "
                             "stderr; forces REPRO_TRACE=1")
    args = parser.parse_args(argv)

    out = sys.stderr if args.as_json else sys.stdout

    def say(text: str) -> None:
        print(text, file=out)

    # chaos knobs must be in the environment before any worker spawns;
    # the reference run below explicitly clears them for itself
    os.environ["REPRO_TASK_BACKOFF"] = "0.01"
    os.environ["REPRO_TASK_RETRIES"] = str(args.retries)
    # keep the pool path exercised: under a 20% crash rate the default
    # serial-degradation threshold trips early by design, which is correct
    # but leaves most of the matrix un-chaosed
    os.environ["REPRO_MAX_POOL_FAILURES"] = "10"
    os.environ.pop("REPRO_JOBS", None)
    os.environ.pop("REPRO_STORE_DIR", None)
    os.environ.pop("REPRO_STORE_URL", None)
    os.environ.pop("REPRO_STORE_CACHE_DIR", None)
    os.environ.pop("REPRO_VARIANT_CACHE_DIR", None)
    os.environ.pop("REPRO_FAULTS", None)
    if args.remote and "remote_fault" not in args.faults:
        args.faults += ";remote_fault:p=0.1,seed=7"
    if args.as_json:
        # the structured report reads retry/quarantine/fault counters out
        # of the run's merged telemetry, so the run must produce one
        os.environ["REPRO_TRACE"] = "1"

    from repro.diffing import all_differs
    from repro.evaluation import measure_precision
    from repro.evaluation.checkpoint import ShardRunStats
    from repro.evaluation.diff_sharding import (DiffShardStats,
                                                measure_precision_sharded)
    from repro.evaluation.executor import reset_worker_cache
    from repro.faults import reset_injector
    from repro.obs import tracing
    from repro.workloads.suites import spec2006_programs

    if args.as_json:
        tracing.refresh()

    workloads = spec2006_programs()[:args.workloads]
    labels = tuple(label.strip() for label in args.labels.split(",")
                   if label.strip())
    differs = all_differs()[:args.tools]

    def rows(report):
        return [(r.program, r.suite, r.tool, r.label, r.precision,
                 r.similarity_score) for r in report.rows]

    say(f"chaos_check: {len(workloads)} workloads x {labels} x "
        f"{[d.name for d in differs]}, jobs={args.jobs}, "
        f"faults={args.faults!r}")

    phases: Dict[str, Dict[str, Any]] = {}
    telemetry: Dict[str, Any] = {}

    # 1. fault-free serial reference (no store, no executor involvement)
    reset_worker_cache()
    started = time.monotonic()
    reference = rows(measure_precision(workloads, labels, differs))
    phases["reference"] = {"seconds": time.monotonic() - started,
                           "rows": len(reference), "ok": True}
    say(f"  reference: {len(reference)} rows")

    tree = tempfile.mkdtemp(prefix="chaos-store-")
    failures = 0
    server = None
    try:
        # 2. chaos run: crashes + corruption over a fresh shared tree —
        # attached directly, or through a loopback store server (--remote)
        if args.remote:
            sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
            from store_server import StoreServer
            server = StoreServer(tree)
            os.environ["REPRO_STORE_URL"] = server.start()
            os.environ["REPRO_REMOTE_BACKOFF"] = "0.001"
            say(f"  serving {tree} at {server.url}")
        else:
            os.environ["REPRO_STORE_DIR"] = tree
        os.environ["REPRO_FAULTS"] = args.faults
        reset_worker_cache()
        reset_injector()
        stats = DiffShardStats()
        chaos_run = ShardRunStats()
        started = time.monotonic()
        chaos = rows(measure_precision_sharded(
            workloads, labels, differs, jobs=args.jobs, stats=stats,
            run_stats=chaos_run))
        identical = chaos == reference
        phases["chaos"] = {"seconds": time.monotonic() - started,
                           "rows": len(chaos), "ok": identical,
                           "shards_executed": chaos_run.executed,
                           "units_scored": stats.units_scored}
        telemetry["chaos_counters"] = _merged_counters(tree)
        if identical:
            say(f"  chaos run: bit-identical "
                f"({chaos_run.executed} shards executed, "
                f"{stats.units_scored} units scored)")
        else:
            say("  chaos run: REPORT DIVERGED FROM SERIAL REFERENCE")
            failures += 1

        # 3. resume over the same tree, faults off: every journaled unit is
        # served from the store, zero units re-scored.  (A shard whose
        # *journal object* was itself a corruption victim re-executes as
        # pure store reads — the manifest is advisory, the store is the
        # truth — so the strict assertion is on scored units, not shards.)
        os.environ.pop("REPRO_FAULTS", None)
        reset_worker_cache()
        reset_injector()
        resumed_stats = DiffShardStats()
        resume_run = ShardRunStats()
        started = time.monotonic()
        resumed = rows(measure_precision_sharded(
            workloads, labels, differs, jobs=args.jobs, stats=resumed_stats,
            run_stats=resume_run))
        ok = (resumed == reference and resumed_stats.units_scored == 0)
        phases["resume"] = {"seconds": time.monotonic() - started,
                            "rows": len(resumed), "ok": ok,
                            "shards_resumed": resume_run.resumed,
                            "shards_planned": resume_run.planned,
                            "shards_executed": resume_run.executed,
                            "units_scored": resumed_stats.units_scored}
        if ok:
            say(f"  resume: {resume_run.resumed}/{resume_run.planned} "
                f"shards revived from the journal "
                f"({resume_run.executed} re-read from store), "
                f"zero units re-scored")
        else:
            say(f"  resume: FAILED (executed={resume_run.executed}, "
                f"resumed={resume_run.resumed}/{resume_run.planned}, "
                f"units_scored={resumed_stats.units_scored}, "
                f"identical={resumed == reference})")
            failures += 1

        # 4. the tree must fsck clean after repairs (repair is local-only:
        # quiesce the server first, then fsck the tree it served)
        if server is not None:
            server.stop()
            server = None
            os.environ.pop("REPRO_STORE_URL", None)
        script = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              "fsck_store.py")
        started = time.monotonic()
        result = subprocess.run([sys.executable, script, "--repair", tree],
                                env=dict(os.environ), capture_output=True,
                                text=True)
        phases["fsck"] = {"seconds": time.monotonic() - started,
                          "ok": result.returncode == 0}
        out.write(result.stdout)
        if result.returncode != 0:
            sys.stderr.write(result.stderr)
            say("  fsck: FAILED")
            failures += 1
        else:
            say("  fsck: clean")

        telemetry["counters"] = _merged_counters(tree)
        telemetry["run_dir"] = _latest_run_dir(tree)
    finally:
        if server is not None:
            server.stop()
        os.environ.pop("REPRO_STORE_DIR", None)
        os.environ.pop("REPRO_STORE_URL", None)
        os.environ.pop("REPRO_REMOTE_BACKOFF", None)
        os.environ.pop("REPRO_FAULTS", None)
        if args.keep_tree:
            say(f"  store tree kept at {tree}")
        else:
            shutil.rmtree(tree, ignore_errors=True)
            telemetry.pop("run_dir", None)

    say("chaos_check: OK" if not failures
        else f"chaos_check: {failures} phase(s) FAILED")
    if args.as_json:
        json.dump({"schema": 1, "ok": not failures, "failures": failures,
                   "config": {"workloads": len(workloads),
                              "labels": list(labels),
                              "tools": [d.name for d in differs],
                              "jobs": args.jobs, "faults": args.faults,
                              "retries": args.retries,
                              "remote": bool(args.remote)},
                   "phases": phases, "telemetry": telemetry},
                  sys.stdout, indent=2, sort_keys=True)
        print()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
