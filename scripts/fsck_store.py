#!/usr/bin/env python
"""Verify (and optionally repair) an on-disk artifact-store tree.

The store's runtime read path already self-heals one object at a time —
corrupt files are quarantined and rebuilt on demand.  ``fsck_store`` is the
offline complement: it walks the whole tree at once and reports everything
the runtime would eventually discover, so an operator can audit a tree
*before* pointing a matrix run (or a future remote-store worker fleet) at
it.

Checks, per object file under ``objects/<kind>/<aa>/<digest>.pkl``:

* the envelope unpickles and carries the pipeline's ``STORE_SCHEMA`` /
  ``KEY_SCHEMA`` stamps and a matching ``kind``;
* the file's digest re-derives from the envelope's key
  (``store_digest(kind, key)``) and matches its file name and shard
  directory — a renamed or cross-linked object is corruption even when its
  pickle is pristine;
* stray files (wrong extension, temp leftovers from killed writers) are
  reported.

Ledger reconciliation against the :class:`GenerationLog`:

* ledger entries whose object file is missing (``ledger_orphans``) and
  object files the ledger never heard of (``unledgered``) are drift, not
  damage — the ledger is advisory — but both are reported and repairable.

``--repair`` quarantines every damaged object (same layout the runtime
uses: ``quarantine/<kind>/<digest>.pkl`` + ``.reason.json``), deletes stale
temp files, and rewrites the ledger to match the surviving objects.  The
run manifests under ``runs/`` are checked for journaled shard digests whose
store object is gone (``manifest_orphans``): harmless for resume (the shard
just re-executes) but repaired by dropping the stale journal lines.

A remote store checks too: pass an ``http(s)://`` URL instead of a
directory and every object is fetched through the
:class:`~repro.store.backend.RemoteBackend` batch protocol and validated
client-side with the same envelope checks.  Fetch failures are **never**
silently degraded to misses — each failed batch is a per-cause
``remote_error`` finding (the same causes ``store.remote_errors`` counts
at runtime), and the report's ``remote_errors`` map aggregates them.
``--repair`` is refused for URLs: repairs mutate the tree and belong on
the machine that owns it.

Exit status: 0 when the tree is clean (after repairs, with ``--repair``),
1 when problems remain, 2 when the tree cannot be checked at all.

Usage:
    PYTHONPATH=src python scripts/fsck_store.py /path/to/store
    PYTHONPATH=src python scripts/fsck_store.py --repair --json /path/to/store
    PYTHONPATH=src python scripts/fsck_store.py http://127.0.0.1:8734
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.store import (CORRUPT_READ_ERRORS, OBJECTS_DIR, QUARANTINE_DIR,
                         STORE_SCHEMA, GenerationLog, KEY_SCHEMA,
                         store_digest)
from repro.store.backend import RemoteBackend, RemoteStoreError
from repro.evaluation.checkpoint import RUNS_DIR


class Finding:
    """One problem found in the tree."""

    def __init__(self, code: str, path: str, detail: str,
                 repairable: bool = True):
        self.code = code
        self.path = path
        self.detail = detail
        self.repairable = repairable

    def as_dict(self) -> Dict[str, object]:
        return {"code": self.code, "path": self.path, "detail": self.detail,
                "repairable": self.repairable}


def _check_envelope(envelope: object, kind: str, shard: str, digest: str,
                    path: str) -> Tuple[Optional[object], Optional[Finding]]:
    """Validate one unpickled envelope; returns (key, finding)."""
    if (not isinstance(envelope, dict)
            or envelope.get("store_schema") != STORE_SCHEMA
            or envelope.get("key_schema") != KEY_SCHEMA
            or envelope.get("kind") != kind
            or "payload" not in envelope or "key" not in envelope):
        return None, Finding("envelope_mismatch", path,
                             "envelope failed schema/kind validation")
    key = envelope["key"]
    try:
        derived = store_digest(kind, key)
    except TypeError as error:
        return None, Finding("bad_key", path, str(error))
    if derived != digest or digest[:2] != shard:
        return key, Finding(
            "digest_mismatch", path,
            f"file named {digest} in shard {shard} but key derives {derived}")
    return key, None


def _check_object(path: str, kind: str, shard: str,
                  digest: str) -> Tuple[Optional[object], Optional[Finding]]:
    """Validate one object file; returns (key, finding)."""
    try:
        with open(path, "rb") as fh:
            envelope = pickle.load(fh)
    except CORRUPT_READ_ERRORS as error:
        return None, Finding("corrupt_object", path,
                             f"{type(error).__name__}: {error}")
    return _check_envelope(envelope, kind, shard, digest, path)


def fsck(root: str, repair: bool = False) -> Dict[str, object]:
    """Scan ``root``; returns the report dict (see ``counts``)."""
    findings: List[Finding] = []
    objects: Dict[str, str] = {}  # digest -> kind, for ledger reconciliation
    scanned = 0

    log: Optional[GenerationLog] = None
    try:
        log = GenerationLog.load(root)
    except ValueError as error:
        findings.append(Finding("bad_manifest", GenerationLog.path_for(root),
                                str(error), repairable=False))
    if log is not None and (log.store_schema != STORE_SCHEMA
                            or log.key_schema != KEY_SCHEMA):
        findings.append(Finding(
            "schema_mismatch", GenerationLog.path_for(root),
            f"tree stamped {log.store_schema}/{log.key_schema}, pipeline "
            f"speaks {STORE_SCHEMA}/{KEY_SCHEMA}", repairable=False))

    objects_root = os.path.join(root, OBJECTS_DIR)
    for kind in sorted(os.listdir(objects_root)) \
            if os.path.isdir(objects_root) else []:
        kind_dir = os.path.join(objects_root, kind)
        if not os.path.isdir(kind_dir):
            findings.append(Finding("stray_file", kind_dir,
                                    "file where a kind directory belongs"))
            continue
        for shard in sorted(os.listdir(kind_dir)):
            shard_dir = os.path.join(kind_dir, shard)
            if not os.path.isdir(shard_dir):
                findings.append(Finding("stray_file", shard_dir,
                                        "file where a shard directory belongs"))
                continue
            for name in sorted(os.listdir(shard_dir)):
                path = os.path.join(shard_dir, name)
                if ".tmp." in name:
                    findings.append(Finding("stale_temp", path,
                                            "leftover from a killed writer"))
                    continue
                if not name.endswith(".pkl"):
                    findings.append(Finding("stray_file", path,
                                            "not an object file"))
                    continue
                scanned += 1
                digest = name[:-len(".pkl")]
                _key, finding = _check_object(path, kind, shard, digest)
                if finding is None:
                    objects[digest] = kind
                else:
                    findings.append(finding)

    ledger_orphans: List[str] = []
    unledgered = 0
    if log is not None:
        for digest, entry in sorted(log.entries.items()):
            if digest not in objects:
                ledger_orphans.append(digest)
        unledgered = sum(1 for digest in objects if digest not in log.entries)

    manifest_orphans: Dict[str, List[str]] = {}
    runs_dir = os.path.join(root, RUNS_DIR)
    if os.path.isdir(runs_dir):
        for name in sorted(os.listdir(runs_dir)):
            if not name.endswith(".jsonl"):
                continue
            path = os.path.join(runs_dir, name)
            stale: List[str] = []
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    lines = fh.readlines()
            except OSError:
                continue
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail: resume already tolerates it
                digest = entry.get("digest") \
                    if isinstance(entry, dict) else None
                if isinstance(digest, str) and digest not in objects:
                    stale.append(digest)
            if stale:
                manifest_orphans[name] = stale

    repaired = 0
    remaining: List[Finding] = []
    if repair:
        for finding in findings:
            fixed = False
            if finding.code in ("corrupt_object", "envelope_mismatch",
                                "bad_key", "digest_mismatch"):
                fixed = bool(_quarantine(root, finding))
            elif finding.code in ("stale_temp", "stray_file") \
                    and os.path.isfile(finding.path):
                try:
                    os.unlink(finding.path)
                    fixed = True
                except OSError:
                    fixed = False
            if fixed:
                repaired += 1
            else:
                remaining.append(finding)
        if log is not None and (ledger_orphans or unledgered):
            # rebuild the ledger from the surviving objects: drop orphans,
            # adopt unledgered objects with an fsck note
            for digest in ledger_orphans:
                log.entries.pop(digest, None)
            for digest, kind in objects.items():
                if digest not in log.entries:
                    log.entries[digest] = {"kind": kind,
                                           "note": "adopted by fsck"}
            log.rewrite_entries(root)
            repaired += len(ledger_orphans) + unledgered
            ledger_orphans = []
            unledgered = 0
        for name, stale in list(manifest_orphans.items()):
            path = os.path.join(runs_dir, name)
            _drop_manifest_lines(path, set(stale))
            repaired += len(stale)
        manifest_orphans = {}
    else:
        remaining = list(findings)

    # drift (ledger/journal entries out of sync with the objects) is
    # advisory by design — reported, repairable, but never a failure;
    # *damage* still on disk is
    clean = not remaining
    return {
        "root": os.path.abspath(root),
        "clean": bool(clean),
        "counts": {
            "objects_scanned": scanned,
            "objects_ok": len(objects),
            "problems": len(findings),
            "ledger_orphans": len(ledger_orphans),
            "unledgered": unledgered,
            "manifest_orphans": sum(len(v)
                                    for v in manifest_orphans.values()),
            "repaired": repaired,
        },
        "findings": [f.as_dict() for f in findings],
        "ledger_orphans": ledger_orphans,
        "manifest_orphans": manifest_orphans,
    }


def _quarantine(root: str, finding: Finding) -> int:
    """Move one damaged object into quarantine/ with a reason record."""
    path = finding.path
    rel = os.path.relpath(path, os.path.join(root, OBJECTS_DIR))
    parts = rel.split(os.sep)
    kind = parts[0] if len(parts) >= 1 else "unknown"
    name = os.path.basename(path)
    destination = os.path.join(root, QUARANTINE_DIR, kind, name)
    try:
        os.makedirs(os.path.dirname(destination), exist_ok=True)
        os.replace(path, destination)
        record = {"kind": kind, "digest": name[:-len(".pkl")]
                  if name.endswith(".pkl") else name,
                  "reason": finding.detail, "cause": finding.code,
                  "pid": os.getpid(), "quarantined_at": time.time(),
                  "by": "fsck_store"}
        reason_path = destination[:-len(".pkl")] + ".reason.json" \
            if destination.endswith(".pkl") else destination + ".reason.json"
        with open(reason_path, "w", encoding="utf-8") as fh:
            json.dump(record, fh, sort_keys=True)
    except OSError:
        return 0
    return 1


def _drop_manifest_lines(path: str, stale: set) -> None:
    """Rewrite one run journal without the stale digests."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    except OSError:
        return
    kept: List[str] = []
    for line in lines:
        text = line.strip()
        if not text:
            continue
        try:
            entry = json.loads(text)
        except json.JSONDecodeError:
            continue
        digest = entry.get("digest") if isinstance(entry, dict) else None
        if isinstance(digest, str) and digest in stale:
            continue
        kept.append(text + "\n")
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.writelines(kept)
        os.replace(tmp, path)
    except OSError:
        pass


def fsck_remote(url: str) -> Dict[str, object]:
    """Check a remote store through the batch protocol, envelope by envelope.

    Every object the server lists is fetched and validated client-side.  A
    batch that cannot be fetched is a per-cause ``remote_error`` finding for
    each of its objects — a dead or flaky server is *reported*, never
    scored as "those objects are fine" or "those objects are missing".
    """
    findings: List[Finding] = []
    remote_errors: Dict[str, int] = {}
    scanned = 0
    ok = 0
    backend = RemoteBackend(url)
    manifest = backend.manifest()
    if (manifest.get("store_schema") != STORE_SCHEMA
            or manifest.get("key_schema") != KEY_SCHEMA):
        findings.append(Finding(
            "schema_mismatch", url,
            f"server stamped {manifest.get('store_schema')}/"
            f"{manifest.get('key_schema')}, pipeline speaks "
            f"{STORE_SCHEMA}/{KEY_SCHEMA}", repairable=False))
    refs = backend.list_refs()
    for start in range(0, len(refs), 256):
        chunk = refs[start:start + 256]
        try:
            found = backend.get_many(chunk)
        except RemoteStoreError as error:
            cause = getattr(error, "cause", "error")
            for kind, digest in chunk:
                scanned += 1
                remote_errors[cause] = remote_errors.get(cause, 0) + 1
                findings.append(Finding(
                    "remote_error", f"{url}/objects/{kind}/{digest}",
                    f"unfetchable ({cause}): {error}", repairable=False))
            continue
        for kind, digest in chunk:
            scanned += 1
            path = f"{url}/objects/{kind}/{digest}"
            data = found.get((kind, digest))
            if data is None:
                # listed a moment ago but gone now: raced GC/quarantine,
                # drift not damage — report it, distinctly from an error
                findings.append(Finding("listed_missing", path,
                                        "listed but not fetchable",
                                        repairable=False))
                continue
            try:
                envelope = pickle.loads(data)
            except CORRUPT_READ_ERRORS as error:
                findings.append(Finding(
                    "corrupt_object", path,
                    f"{type(error).__name__}: {error}", repairable=False))
                continue
            _key, finding = _check_envelope(envelope, kind, digest[:2],
                                            digest, path)
            if finding is None:
                ok += 1
            else:
                finding.repairable = False
                findings.append(finding)
    return {
        "root": url,
        "clean": not findings,
        "counts": {
            "objects_scanned": scanned,
            "objects_ok": ok,
            "problems": len(findings),
            "remote_errors": sum(remote_errors.values()),
        },
        "remote_errors": dict(sorted(remote_errors.items())),
        "findings": [f.as_dict() for f in findings],
    }


def _is_url(root: str) -> bool:
    return root.startswith("http://") or root.startswith("https://")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="verify/repair an artifact-store tree")
    parser.add_argument("root", help="store tree root (REPRO_STORE_DIR) "
                                     "or store server URL (REPRO_STORE_URL)")
    parser.add_argument("--repair", action="store_true",
                        help="quarantine damage, reconcile ledger + journals")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the full report as JSON")
    args = parser.parse_args(argv)

    if _is_url(args.root):
        if args.repair:
            print("fsck_store: --repair is local-only; run it on the "
                  "server's tree", file=sys.stderr)
            return 2
        try:
            report = fsck_remote(args.root.rstrip("/"))
        except RemoteStoreError as error:
            print(f"fsck_store: {args.root}: {error}", file=sys.stderr)
            return 2
        if args.as_json:
            print(json.dumps(report, indent=1, sort_keys=True))
        else:
            counts = report["counts"]
            print(f"fsck_store: {report['root']}")
            print(f"  objects scanned: {counts['objects_scanned']}, "
                  f"ok: {counts['objects_ok']}")
            for finding in report["findings"]:
                print(f"  [{finding['code']}] {finding['path']}: "
                      f"{finding['detail']}")
            if counts["remote_errors"]:
                print(f"  remote errors: {report['remote_errors']}")
            print("  clean" if report["clean"] else "  PROBLEMS FOUND")
        return 0 if report["clean"] else 1

    if not os.path.isdir(args.root):
        print(f"fsck_store: {args.root}: not a directory", file=sys.stderr)
        return 2
    report = fsck(args.root, repair=args.repair)
    if args.as_json:
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        counts = report["counts"]
        print(f"fsck_store: {report['root']}")
        print(f"  objects scanned: {counts['objects_scanned']}, "
              f"ok: {counts['objects_ok']}")
        for finding in report["findings"]:
            print(f"  [{finding['code']}] {finding['path']}: "
                  f"{finding['detail']}")
        if counts["ledger_orphans"]:
            print(f"  ledger orphans: {counts['ledger_orphans']}")
        if counts["unledgered"]:
            print(f"  unledgered objects: {counts['unledgered']}")
        if counts["manifest_orphans"]:
            print(f"  run-journal orphans: {counts['manifest_orphans']}")
        if counts["repaired"]:
            print(f"  repaired: {counts['repaired']}")
        print("  clean" if report["clean"] else "  PROBLEMS FOUND")
    return 0 if report["clean"] else 1


if __name__ == "__main__":
    sys.exit(main())
