#!/usr/bin/env python
"""Summarise one telemetry run: phases, per-worker lanes, supervision events.

A telemetry run directory (``<store>/telemetry/<run_id>/``) holds the
per-process ``<pid>.jsonl`` shard files plus the merged exports written at
run exit (``trace.json`` Chrome trace-event JSON, ``metrics.json``).  This
inspector answers the operator questions the raw files don't:

* **Where did the wall time go?**  Per-phase *self time* — each span's
  duration minus its children's, so nested regions are not double-counted —
  grouped by category (``build`` / ``measure`` / ``diff`` / ``store`` /
  ``verify`` / ``coordinate`` / ``task`` / ``other``), with the share of
  busy time attributed to named (non-``other``) phases reported as
  *coverage*.
* **What did each worker do?**  One lane per pid: busy time, completed
  tasks, span count.
* **What went wrong (and was survived)?**  Counts of supervision and chaos
  events: retries, timeouts, pool respawns, quarantines, injected faults.

Input resolution: a run directory, a ``trace.json`` file, or a store root
(picks the most recently modified run under ``<root>/telemetry/``).  Shard
``.jsonl`` files are preferred over ``trace.json`` when present — they
carry parent ids, which makes self-time exact instead of inferred from
interval containment.

Usage:
    PYTHONPATH=src python scripts/trace_report.py /path/to/store
    PYTHONPATH=src python scripts/trace_report.py /path/to/telemetry/<run>
    PYTHONPATH=src python scripts/trace_report.py --json <run dir>
    PYTHONPATH=src python scripts/trace_report.py --validate <run dir>

Exit status: 0 on a readable (and, with ``--validate``, schema-clean) run,
1 on validation problems, 2 when no telemetry can be found at the path.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.obs.collect import merge_records, read_shards  # noqa: E402
from repro.obs.export import validate_chrome_trace  # noqa: E402

#: The phase categories the pipeline emits, in report order.
PHASES = ("build", "measure", "diff", "store", "verify", "coordinate",
          "task", "other")


# -- input resolution -----------------------------------------------------------------


def resolve_run(path: str) -> Tuple[Optional[str], Optional[str]]:
    """(run directory, trace.json path) for ``path``; either may be None."""
    if os.path.isfile(path):
        return (None, path) if path.endswith(".json") else (None, None)
    if not os.path.isdir(path):
        return None, None
    if any(name.endswith(".jsonl") for name in os.listdir(path)) \
            or os.path.exists(os.path.join(path, "trace.json")):
        trace = os.path.join(path, "trace.json")
        return path, trace if os.path.exists(trace) else None
    telemetry = os.path.join(path, "telemetry")
    if os.path.isdir(telemetry):
        runs = [os.path.join(telemetry, name)
                for name in os.listdir(telemetry)
                if os.path.isdir(os.path.join(telemetry, name))]
        if runs:
            latest = max(runs, key=os.path.getmtime)
            return resolve_run(latest)
    return None, None


def load_records(run_dir: Optional[str], trace_path: Optional[str]
                 ) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Merged (span/event records, metrics snapshots) from whatever exists."""
    if run_dir is not None:
        records, snapshots = read_shards(run_dir)
        if records or snapshots:
            return merge_records(records), snapshots
    if trace_path is not None:
        try:
            with open(trace_path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return [], []
        records = []
        for ev in payload.get("traceEvents", []):
            if not isinstance(ev, dict) or ev.get("ph") not in ("X", "i"):
                continue
            records.append({
                "type": "span" if ev["ph"] == "X" else "event",
                "name": ev.get("name", "?"), "cat": ev.get("cat", "other"),
                "ts": ev.get("ts", 0), "dur": ev.get("dur", 0),
                "pid": ev.get("pid", 0), "tid": ev.get("tid", 0),
                "args": ev.get("args", {}),
            })
        return merge_records(records), []
    return [], []


# -- analysis -------------------------------------------------------------------------


def self_times(spans: List[Dict[str, Any]]) -> List[int]:
    """Per-span self time (dur minus direct children), via a stack sweep.

    Works from intervals alone — each (pid, tid) group is sorted by
    ``(ts, -dur)`` so enclosing spans precede their children; a span still
    on the stack when a later one starts inside it is its parent.  Exact
    when parent ids are present (jsonl shards) and the best available
    reconstruction when they are not (re-imported trace.json).
    """
    self_us = [int(span.get("dur", 0)) for span in spans]
    groups: Dict[Tuple[int, int], List[int]] = defaultdict(list)
    for i, span in enumerate(spans):
        groups[(span.get("pid", 0), span.get("tid", 0))].append(i)
    for indices in groups.values():
        indices.sort(key=lambda i: (spans[i].get("ts", 0),
                                    -int(spans[i].get("dur", 0))))
        stack: List[int] = []  # indices of open spans, outermost first
        for i in indices:
            ts = spans[i].get("ts", 0)
            while stack and (spans[stack[-1]].get("ts", 0)
                             + int(spans[stack[-1]].get("dur", 0))) <= ts:
                stack.pop()
            if stack:
                self_us[stack[-1]] -= int(spans[i].get("dur", 0))
            stack.append(i)
    return [max(0, value) for value in self_us]


def analyze(records: List[Dict[str, Any]],
            snapshots: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The report dict (also the ``--json`` payload)."""
    spans = [r for r in records if r.get("type") != "event"
             and r.get("type") != "metrics"]
    events = [r for r in records if r.get("type") == "event"]
    if not spans and not events:
        return {"empty": True}

    stamps = [r.get("ts", 0) for r in spans + events]
    ends = [r.get("ts", 0) + int(r.get("dur", 0)) for r in spans] or stamps
    wall_us = max(max(ends), max(stamps)) - min(stamps) if stamps else 0

    selves = self_times(spans)
    phase_us: Dict[str, int] = {phase: 0 for phase in PHASES}
    span_counts: Dict[str, int] = defaultdict(int)
    workers: Dict[int, Dict[str, int]] = defaultdict(
        lambda: {"busy_us": 0, "tasks": 0, "spans": 0})
    for span, self_us in zip(spans, selves):
        cat = span.get("cat") or "other"
        phase_us[cat if cat in phase_us else "other"] += self_us
        span_counts[span.get("name", "?")] += 1
        lane = workers[span.get("pid", 0)]
        lane["busy_us"] += self_us
        lane["spans"] += 1
        if span.get("name") == "task":
            lane["tasks"] += 1

    busy_us = sum(phase_us.values())
    named_us = busy_us - phase_us["other"]
    event_counts: Dict[str, int] = defaultdict(int)
    for ev in events:
        event_counts[ev.get("name", "?")] += 1

    merged_counters: Dict[str, Any] = {}
    if snapshots:
        last: Dict[int, Dict[str, Any]] = {}
        for snap in snapshots:
            last[int(snap.get("pid", 0))] = snap
        for snap in last.values():
            for name, value in (snap.get("counters") or {}).items():
                merged_counters[name] = merged_counters.get(name, 0) + value

    return {
        "empty": False,
        "wall_seconds": wall_us / 1e6,
        "busy_seconds": busy_us / 1e6,
        "processes": sorted({r.get("pid", 0) for r in spans + events}),
        "spans": len(spans),
        "events": len(events),
        "phases": {phase: phase_us[phase] / 1e6 for phase in PHASES},
        "coverage": (named_us / busy_us) if busy_us else 1.0,
        "workers": {str(pid): {"busy_seconds": lane["busy_us"] / 1e6,
                               "tasks": lane["tasks"],
                               "spans": lane["spans"]}
                    for pid, lane in sorted(workers.items())},
        "event_counts": dict(sorted(event_counts.items())),
        "span_counts": dict(sorted(span_counts.items())),
        "counters": dict(sorted(merged_counters.items())),
    }


# -- rendering ------------------------------------------------------------------------


def render(report: Dict[str, Any], source: str) -> str:
    lines = [f"Telemetry run: {source}"]
    if report.get("empty"):
        lines.append("  (no spans or events recorded)")
        return "\n".join(lines)
    lines.append(
        "  wall %.3fs  busy %.3fs  processes %d  spans %d  events %d"
        % (report["wall_seconds"], report["busy_seconds"],
           len(report["processes"]), report["spans"], report["events"]))
    lines.append("")
    lines.append("Phase summary (self time):")
    busy = report["busy_seconds"] or 1.0
    for phase in PHASES:
        seconds = report["phases"].get(phase, 0.0)
        if seconds <= 0:
            continue
        lines.append("  %-11s %9.3fs  %5.1f%%"
                     % (phase, seconds, 100.0 * seconds / busy))
    lines.append("  coverage: %.1f%% of busy time in named phases"
                 % (100.0 * report["coverage"]))
    lines.append("")
    lines.append("Per-worker lanes:")
    for pid, lane in report["workers"].items():
        lines.append("  pid %-8s busy %9.3fs  tasks %4d  spans %5d"
                     % (pid, lane["busy_seconds"], lane["tasks"],
                        lane["spans"]))
    if report["event_counts"]:
        lines.append("")
        lines.append("Events:")
        for name, count in report["event_counts"].items():
            lines.append("  %-28s %6d" % (name, count))
    interesting = {name: value for name, value in report["counters"].items()
                   if name.startswith(("executor.", "faults.", "checkpoint."))
                   or name.startswith("store.corrupt")
                   or name == "store.quarantined"}
    if interesting:
        lines.append("")
        lines.append("Counters (merged):")
        for name, value in interesting.items():
            lines.append("  %-28s %6s" % (name, value))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Summarise a repro telemetry run")
    parser.add_argument("path", help="run directory, trace.json, or "
                                     "store root (latest run)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the report as JSON on stdout")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check trace.json (exit 1 on problems)")
    args = parser.parse_args(argv)

    run_dir, trace_path = resolve_run(args.path)
    if run_dir is None and trace_path is None:
        print(f"trace_report: no telemetry found at {args.path}",
              file=sys.stderr)
        return 2

    if args.validate:
        if trace_path is None:
            print("trace_report: --validate needs a trace.json "
                  f"(none under {args.path})", file=sys.stderr)
            return 2
        try:
            with open(trace_path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError) as error:
            print(f"trace_report: cannot read {trace_path}: {error}",
                  file=sys.stderr)
            return 1
        problems = validate_chrome_trace(payload)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        print("%s: %s" % (trace_path,
                          "OK" if not problems
                          else "%d problem(s)" % len(problems)))
        if problems:
            return 1

    records, snapshots = load_records(run_dir, trace_path)
    report = analyze(records, snapshots)
    source = run_dir or trace_path or args.path
    if args.as_json:
        json.dump({"source": source, **report}, sys.stdout, indent=2,
                  sort_keys=True)
        print()
    else:
        print(render(report, source))
    return 0


if __name__ == "__main__":
    sys.exit(main())
