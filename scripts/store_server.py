#!/usr/bin/env python
"""HTTP artifact-store server: one warm tree, many machines.

Serves a local :class:`~repro.store.backend.LocalBackend` object tree to
any number of :class:`~repro.store.backend.RemoteBackend` clients
(``REPRO_STORE_URL``).  Pure stdlib (``http.server``), threaded, and
deliberately *dumb about payloads*: objects are opaque byte blobs moved
with transport checksums — the server never unpickles anything, so a
malicious or damaged envelope cannot execute code server-side.  All
semantic validation (envelope schema, key match, quarantine policy)
happens in the clients, which share the implementation with the local
path.

Protocol (all under one base URL):

* ``GET /manifest`` — the tree's schema stamps + ledger counts; clients
  validate compatibility at attach exactly like a local
  ``generation.json`` read;
* ``GET/HEAD/PUT /objects/<kind>/<digest>`` — single objects.  ``PUT``
  is first-writer-kept (``201`` written, ``200`` existing copy kept)
  unless ``X-Repro-Overwrite: 1``; bodies carry ``X-Repro-Sha256`` and
  are rejected (``400``) on checksum mismatch, so a torn upload can
  never be published;
* ``DELETE /objects/<kind>/<digest>`` — GC sweep support;
* ``POST /batch/get|head|put`` — coalesced forms.  ``batch/get``
  responds with one JSON index line (``found``/``sizes``/``sha256``)
  followed by the concatenated blobs; ``batch/put`` accepts the mirror
  framing;
* ``POST /quarantine/<kind>/<digest>`` — move a client-detected corrupt
  object aside server-side (same ``quarantine/`` layout as local trees),
  so the client's rebuild publishes into a clean slot;
* ``GET/POST /runs/<run_id>`` — the checkpoint layer's run journals,
  hosted next to the objects they reference so ``scripts/gc_store.py``
  sees every live root;
* ``GET /list[?kind=...]``, ``GET /stats`` — enumeration/inspection
  (``scripts/fsck_store.py`` over HTTP, GC tooling, dashboards).

Writes land through the same fsync'd atomic protocol as local puts and
are ledgered in ``generation.entries`` with the tree's generation stamp.

Usage:
    PYTHONPATH=src python scripts/store_server.py /path/to/store
    PYTHONPATH=src python scripts/store_server.py --host 0.0.0.0 \\
        --port 8734 /path/to/store
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import sys
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.store import STORE_SCHEMA, KEY_SCHEMA, GenerationLog, StoreError
from repro.store.backend import (CHECKSUM_HEADER, OVERWRITE_HEADER,
                                 LocalBackend, fsync_directory)

#: ``<kind>`` and ``<digest>`` path segments are validated against these
#: before touching the filesystem — the URL space must not reach outside
#: the tree.
_KIND_RE = re.compile(r"^[a-z][a-z0-9_-]{0,31}$")
_DIGEST_RE = re.compile(r"^[0-9a-f]{64}$")
_RUN_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")

#: Largest accepted request body (one object or one batch), a backstop
#: against a runaway client, not a tuning knob.
MAX_BODY = 1 << 30


class StoreServerState:
    """The shared tree + ledger behind the request handlers."""

    def __init__(self, root: str):
        self.backend = LocalBackend(root)
        self.backend.ensure_tree()
        log = GenerationLog.load(root)
        if log is None:
            log = GenerationLog(store_schema=STORE_SCHEMA,
                                key_schema=KEY_SCHEMA)
            log.save(root)
        elif log.store_schema != STORE_SCHEMA or log.key_schema != KEY_SCHEMA:
            raise StoreError(
                f"cannot serve store at {root!r}: tree has "
                f"store_schema={log.store_schema} "
                f"key_schema={log.key_schema}, this server speaks "
                f"{STORE_SCHEMA}/{KEY_SCHEMA}")
        self.log = log
        self.root = self.backend.root
        #: Serialises ledger appends (each is one O_APPEND write, but the
        #: in-memory entry map behind ``record`` is not thread-safe).
        self.ledger_lock = threading.Lock()
        #: Serialises object publication.  ``LocalBackend.put`` is
        #: check-then-rename, so two handler threads racing the same digest
        #: could *both* report "written" — and the loser's payload would
        #: silently replace the winner's, violating first-writer-kept.
        self.write_lock = threading.Lock()
        self.requests = 0
        self.objects_served = 0
        self.bytes_served = 0
        self.objects_written = 0

    def write(self, kind: str, digest: str, data: bytes,
              overwrite: bool = False) -> bool:
        """Publish one object atomically with respect to other handlers."""
        with self.write_lock:
            written = self.backend.put(kind, digest, data,
                                       overwrite=overwrite)
        if written:
            self.objects_written += 1
            self.ledger(digest, kind)
        return written

    def ledger(self, digest: str, kind: str) -> None:
        with self.ledger_lock:
            try:
                self.log.append_entry(self.root, digest, kind,
                                      note="(remote put)")
            except OSError:
                self.log.record(digest, kind, note="(remote put)")

    def runs_dir(self) -> str:
        return os.path.join(self.root, "runs")

    def manifest(self) -> Dict[str, object]:
        with self.ledger_lock:
            kinds: Dict[str, int] = {}
            for entry in self.log.entries.values():
                kind = entry.get("kind")
                if isinstance(kind, str):
                    kinds[kind] = kinds.get(kind, 0) + 1
            return {"store_schema": self.log.store_schema,
                    "key_schema": self.log.key_schema,
                    "generation": self.log.generation,
                    "entries": len(self.log.entries),
                    "kinds": kinds}


class StoreRequestHandler(BaseHTTPRequestHandler):
    """One request; the state object hangs off the server instance."""

    server_version = "repro-store/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------------

    @property
    def state(self) -> StoreServerState:
        return self.server.state  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):  # type: ignore[attr-defined]
            sys.stderr.write("store-server: " + (format % args) + "\n")

    def _body(self) -> Optional[bytes]:
        length = int(self.headers.get("Content-Length", "0") or "0")
        if length < 0 or length > MAX_BODY:
            self._error(413, "request body too large")
            return None
        return self.rfile.read(length) if length else b""

    def _reply(self, status: int, data: bytes = b"",
               content_type: str = "application/octet-stream",
               extra: Optional[Dict[str, str]] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        for name, value in (extra or {}).items():
            self.send_header(name, value)
        self.end_headers()
        if self.command != "HEAD" and data:
            self.wfile.write(data)

    def _json(self, status: int, payload: object) -> None:
        self._reply(status, json.dumps(payload, sort_keys=True
                                       ).encode("utf-8"),
                    content_type="application/json")

    def _error(self, status: int, message: str) -> None:
        self._json(status, {"error": message})

    def _object_ref(self, prefix: str) -> Optional[Tuple[str, str]]:
        """Parse + validate ``/<prefix>/<kind>/<digest>`` from the path."""
        parts = self.path.split("?", 1)[0].strip("/").split("/")
        if len(parts) != 3 or parts[0] != prefix:
            self._error(404, "not found")
            return None
        kind, digest = parts[1], parts[2]
        if not _KIND_RE.match(kind) or not _DIGEST_RE.match(digest):
            self._error(400, "malformed kind or digest")
            return None
        return kind, digest

    # -- GET / HEAD --------------------------------------------------------------

    def do_GET(self) -> None:
        self.state.requests += 1
        path = self.path.split("?", 1)[0]
        if path == "/manifest":
            self._json(200, self.state.manifest())
        elif path == "/stats":
            state = self.state
            self._json(200, {"requests": state.requests,
                             "objects_served": state.objects_served,
                             "bytes_served": state.bytes_served,
                             "objects_written": state.objects_written,
                             "manifest": state.manifest()})
        elif path == "/list":
            self._get_list()
        elif path.startswith("/objects/"):
            self._get_object()
        elif path.startswith("/runs/"):
            self._get_run()
        else:
            self._error(404, "not found")

    do_HEAD = do_GET

    def _get_list(self) -> None:
        query = urllib.parse.urlsplit(self.path).query
        kind = urllib.parse.parse_qs(query).get("kind", [None])[0]
        if kind is not None and not _KIND_RE.match(kind):
            self._error(400, "malformed kind")
            return
        refs = self.state.backend.list_refs(kind)
        self._json(200, {"refs": [[k, d] for k, d in refs]})

    def _get_object(self) -> None:
        ref = self._object_ref("objects")
        if ref is None:
            return
        data = self.state.backend.get(*ref)
        if data is None:
            self._error(404, "no such object")
            return
        self.state.objects_served += 1
        self.state.bytes_served += len(data)
        self._reply(200, data,
                    extra={CHECKSUM_HEADER:
                           hashlib.sha256(data).hexdigest()})

    def _get_run(self) -> None:
        run_id = self.path.split("?", 1)[0][len("/runs/"):]
        if not _RUN_RE.match(run_id):
            self._error(400, "malformed run id")
            return
        path = os.path.join(self.state.runs_dir(), f"{run_id}.jsonl")
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            self._error(404, "no such run")
            return
        self._reply(200, data, content_type="text/plain")

    # -- PUT / DELETE ------------------------------------------------------------

    def do_PUT(self) -> None:
        self.state.requests += 1
        ref = self._object_ref("objects")
        if ref is None:
            return
        data = self._body()
        if data is None:
            return
        expected = self.headers.get(CHECKSUM_HEADER)
        if expected and hashlib.sha256(data).hexdigest() != expected:
            # a torn or damaged upload must never be published
            self._error(400, "checksum mismatch")
            return
        overwrite = self.headers.get(OVERWRITE_HEADER, "") == "1"
        kind, digest = ref
        try:
            written = self.state.write(kind, digest, data,
                                       overwrite=overwrite)
        except OSError as error:
            self._error(500, f"write failed: {error}")
            return
        self._json(201 if written else 200, {"written": written})

    def do_DELETE(self) -> None:
        self.state.requests += 1
        ref = self._object_ref("objects")
        if ref is None:
            return
        if self.state.backend.delete(*ref):
            self._json(200, {"deleted": True})
        else:
            self._error(404, "no such object")

    # -- POST (batch, quarantine, runs) ------------------------------------------

    def do_POST(self) -> None:
        self.state.requests += 1
        path = self.path.split("?", 1)[0]
        data = self._body()
        if data is None:
            return
        if path == "/batch/get":
            self._batch_get(data)
        elif path == "/batch/head":
            self._batch_head(data)
        elif path == "/batch/put":
            self._batch_put(data)
        elif path.startswith("/quarantine/"):
            self._post_quarantine(data)
        elif path.startswith("/runs/"):
            self._post_run(data)
        else:
            self._error(404, "not found")

    def _batch_refs(self, data: bytes) -> Optional[List[Tuple[str, str]]]:
        try:
            payload = json.loads(data.decode("utf-8"))
            items = payload["items"]
            refs = [(str(kind), str(digest)) for kind, digest in items]
        except (ValueError, KeyError, TypeError):
            self._error(400, "malformed batch request")
            return None
        for kind, digest in refs:
            if not _KIND_RE.match(kind) or not _DIGEST_RE.match(digest):
                self._error(400, "malformed kind or digest")
                return None
        return refs

    def _batch_get(self, data: bytes) -> None:
        refs = self._batch_refs(data)
        if refs is None:
            return
        found: List[bool] = []
        blobs: List[bytes] = []
        for ref in refs:
            blob = self.state.backend.get(*ref)
            found.append(blob is not None)
            if blob is not None:
                blobs.append(blob)
        index = {"found": found,
                 "sizes": [len(blob) for blob in blobs],
                 "sha256": [hashlib.sha256(blob).hexdigest()
                            for blob in blobs]}
        body = (json.dumps(index, sort_keys=True).encode("utf-8") + b"\n"
                + b"".join(blobs))
        self.state.objects_served += len(blobs)
        self.state.bytes_served += sum(len(blob) for blob in blobs)
        self._reply(200, body)

    def _batch_head(self, data: bytes) -> None:
        refs = self._batch_refs(data)
        if refs is None:
            return
        self._json(200, {"found": [self.state.backend.contains(*ref)
                                   for ref in refs]})

    def _batch_put(self, data: bytes) -> None:
        newline = data.find(b"\n")
        if newline < 0:
            self._error(400, "malformed batch framing")
            return
        try:
            index = json.loads(data[:newline].decode("utf-8"))
            items = [(str(kind), str(digest), int(size), str(sha))
                     for kind, digest, size, sha in index["items"]]
            overwrite = bool(index.get("overwrite", False))
        except (ValueError, KeyError, TypeError):
            self._error(400, "malformed batch request")
            return
        blobs = data[newline + 1:]
        offset = 0
        written: List[bool] = []
        for kind, digest, size, sha in items:
            if not _KIND_RE.match(kind) or not _DIGEST_RE.match(digest):
                self._error(400, "malformed kind or digest")
                return
            blob = blobs[offset:offset + size]
            offset += size
            if len(blob) != size or hashlib.sha256(blob).hexdigest() != sha:
                self._error(400, "checksum mismatch in batch")
                return
            try:
                wrote = self.state.write(kind, digest, blob,
                                         overwrite=overwrite)
            except OSError as error:
                self._error(500, f"write failed: {error}")
                return
            written.append(wrote)
        self._json(200, {"written": written})

    def _post_quarantine(self, data: bytes) -> None:
        ref = self._object_ref("quarantine")
        if ref is None:
            return
        try:
            record = json.loads(data.decode("utf-8")) if data else {}
        except ValueError:
            record = {}
        if not isinstance(record, dict):
            record = {}
        record.setdefault("quarantined_by", "remote client")
        moved = self.state.backend.quarantine(ref[0], ref[1], record)
        if moved:
            self._json(200, {"quarantined": True})
        else:
            self._error(404, "no such object")

    def _post_run(self, data: bytes) -> None:
        run_id = self.path.split("?", 1)[0][len("/runs/"):]
        if not _RUN_RE.match(run_id):
            self._error(400, "malformed run id")
            return
        runs = self.state.runs_dir()
        os.makedirs(runs, exist_ok=True)
        path = os.path.join(runs, f"{run_id}.jsonl")
        text = data.decode("utf-8", errors="replace")
        if text and not text.endswith("\n"):
            text += "\n"
        # O_APPEND keeps concurrent journal lines whole, exactly like the
        # local RunManifest; fsync so a journaled shard survives a crash
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, text.encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)
        fsync_directory(runs)
        self._json(200, {"appended": True})


class StoreServer:
    """An embeddable store server (tests use ``port=0`` loopback)."""

    def __init__(self, root: str, host: str = "127.0.0.1", port: int = 0,
                 verbose: bool = False):
        self.state = StoreServerState(root)
        self._httpd = ThreadingHTTPServer((host, port), StoreRequestHandler)
        self._httpd.state = self.state  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> str:
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="store-server", daemon=True)
        self._thread.start()
        return self.url

    def stop(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "StoreServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="serve an artifact-store tree over HTTP")
    parser.add_argument("root", help="store tree to serve (created if absent)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default loopback; use 0.0.0.0 "
                             "to serve a worker fleet)")
    parser.add_argument("--port", type=int, default=8734,
                        help="TCP port (default 8734; 0 picks a free one)")
    parser.add_argument("--verbose", action="store_true",
                        help="log each request to stderr")
    args = parser.parse_args(argv)
    try:
        server = StoreServer(args.root, host=args.host, port=args.port,
                             verbose=args.verbose)
    except StoreError as error:
        print(f"store-server: {error}", file=sys.stderr)
        return 2
    print(f"store-server: serving {server.state.root} at {server.url}",
          flush=True)
    try:
        server._httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server._httpd.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
