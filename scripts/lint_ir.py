#!/usr/bin/env python
"""Lint the workload corpus (or one suite/scheme slice) with the deep
static-analysis subsystem.

For every selected workload the tool builds the program, optionally applies
an obfuscation scheme, and runs:

* full-tier IR verification (structural + types + dominance + dataflow
  lints) on the linked program, and
* the cost-model consistency check (compiled/superblock precomputed totals
  vs a static recount from ``vm/costs.py``).

Diagnostics print as ``function:block: message [code]`` lines (or JSON with
``--json``).  A baseline file (``--baseline``) suppresses known findings by
signature; ``--write-baseline`` records the current findings as that
baseline.  Exit status is 1 only when unsuppressed *errors* remain —
warnings (dead stores in bogus-CFG junk blocks, …) never fail the run.

Usage:
    PYTHONPATH=src python scripts/lint_ir.py                  # whole corpus
    PYTHONPATH=src python scripts/lint_ir.py --suite embedded --scheme fusion
    PYTHONPATH=src python scripts/lint_ir.py --json --baseline lint_baseline.json
"""

from __future__ import annotations

import argparse
import sys

from typing import List

from repro.analysis.static import (Diagnostic, apply_baseline, check_program,
                                   diagnostics_to_json, load_baseline, verify,
                                   write_baseline)
from repro.workloads import load_suite, suite_names

#: scheme name -> obfuscator factory (None = the unobfuscated build)
SCHEMES = ("none", "fission", "fusion", "fufi.sep", "fufi.ori", "fufi.all",
           "sub", "bog", "fla", "fla-10")


def _obfuscate(program, scheme: str, seed: int):
    if scheme == "none":
        return program.link()
    if scheme in ("fission", "fusion", "fufi.sep", "fufi.ori", "fufi.all"):
        from repro.core.obfuscator import Khaos, KhaosConfig
        result = Khaos(KhaosConfig(mode=scheme, seed=seed)).obfuscate(
            program, verify=False)
        return result.program
    from repro.baselines.ollvm import (bogus_obfuscator, flattening_obfuscator,
                                       sub_obfuscator)
    factory = {"sub": lambda: sub_obfuscator(seed=seed),
               "bog": lambda: bogus_obfuscator(seed=seed),
               "fla": lambda: flattening_obfuscator(1.0, seed=seed),
               "fla-10": lambda: flattening_obfuscator(0.1, seed=seed)}[scheme]
    return factory().obfuscate(program, verify=False).program


def lint_corpus(suites: List[str], schemes: List[str], seed: int,
                tier: str, with_costs: bool) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for suite in suites:
        for workload in load_suite(suite):
            for scheme in schemes:
                program = _obfuscate(workload.build(), scheme, seed)
                found = verify(program, tier=tier)
                if with_costs:
                    found = found + check_program(program)
                diagnostics.extend(
                    Diagnostic(d.severity, d.code, d.message,
                               function=f"{workload.name}/{scheme}/{d.function}",
                               block=d.block)
                    for d in found)
    return diagnostics


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", action="append",
                        help="suite to lint (repeatable; default: all)")
    parser.add_argument("--scheme", action="append", choices=SCHEMES,
                        help="obfuscation scheme (repeatable; default: none)")
    parser.add_argument("--all-schemes", action="store_true",
                        help="lint every scheme (overrides --scheme)")
    parser.add_argument("--tier", default="full",
                        choices=("structural", "typed", "full"))
    parser.add_argument("--no-costs", action="store_true",
                        help="skip the cost-model consistency check")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--json", action="store_true",
                        help="emit diagnostics as JSON")
    parser.add_argument("--baseline",
                        help="suppression file of known finding signatures")
    parser.add_argument("--write-baseline",
                        help="record current findings to this baseline file")
    args = parser.parse_args(argv)

    suites = args.suite or list(suite_names())
    schemes = list(SCHEMES) if args.all_schemes else (args.scheme or ["none"])
    diagnostics = lint_corpus(suites, schemes, args.seed, args.tier,
                              not args.no_costs)

    if args.write_baseline:
        write_baseline(args.write_baseline, diagnostics)
        print(f"wrote {len(diagnostics)} finding(s) to {args.write_baseline}")
        return 0

    suppressed_count = 0
    if args.baseline:
        diagnostics, suppressed = apply_baseline(
            diagnostics, load_baseline(args.baseline))
        suppressed_count = len(suppressed)

    if args.json:
        print(diagnostics_to_json(diagnostics))
    else:
        for diagnostic in diagnostics:
            print(diagnostic.render())
        errors = sum(d.is_error for d in diagnostics)
        print(f"lint_ir: {len(diagnostics)} finding(s) "
              f"({errors} error(s), {suppressed_count} suppressed) over "
              f"{len(suites)} suite(s) x {len(schemes)} scheme(s) "
              f"at tier {args.tier}")
    return 1 if any(d.is_error for d in diagnostics) else 0


if __name__ == "__main__":
    sys.exit(main())
