#!/usr/bin/env bash
# Run the perf micro-benchmark suite and write BENCH_results.json at the repo
# root, so subsequent PRs can diff the numbers.  Workload generation is
# profile-seeded (fixed seeds); pass --quick for a fast smoke run.
set -euo pipefail

cd "$(dirname "$0")/.."
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} exec python benchmarks/perf/run_bench.py "$@"
