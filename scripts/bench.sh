#!/usr/bin/env bash
# Run the perf micro-benchmark suite and write BENCH_results.json at the repo
# root, so subsequent PRs can diff the numbers.  Workload generation is
# profile-seeded (fixed seeds); pass --quick for a fast smoke run.
#
# --smoke (CI mode) runs the minimal matrix into a temp directory and asserts
# the harness still produces a structurally valid BENCH_results.json — no
# timing-sensitive assertions, and the tracked results file is not touched.
# The smoke run also exercises the three-tier VM (the vm_superblock section:
# legacy/compiled/superblock steady-state steps/s plus the batched fig6/7
# measurement, asserted row-identical to the serial reference on both the
# compiled and superblock tiers), the parallel experiment executor (the harness
# re-runs the figure-8 diff phase at jobs=2 and asserts row-identity), the
# legacy disk-persisted variant cache (REPRO_VARIANT_CACHE_DIR round trip),
# the shared artifact store (REPRO_STORE_DIR: the fig67_sharded section
# must leave a store tree with an objects/ dir and a generation.json
# manifest, warm attaches must rebuild zero variants) and the
# function-granularity diff sharding (fig8_function_sharded: serial vs
# jobs=2 vs warm-store row identity, warm runs adopt every per-function
# diff payload and rebuild zero FeatureIndex payloads, and the fig8 store
# tree must hold objects/diff), and the deep static-analysis subsystem
# (verify_overhead section, schema 7: the fig6 variant set must verify
# error-free at the full tier, cold vs AnalysisManager-warm timings vs the
# uncached build phase).
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

if [[ "${1:-}" == "--smoke" ]]; then
  shift
  tmpdir="$(mktemp -d)"
  trap 'rm -rf "$tmpdir"' EXIT
  out="$tmpdir/BENCH_results.json"
  export REPRO_VARIANT_CACHE_DIR="$tmpdir/variant-cache"
  export REPRO_STORE_DIR="$tmpdir/store"
  mkdir -p "$REPRO_VARIANT_CACHE_DIR" "$REPRO_STORE_DIR"
  python benchmarks/perf/run_bench.py --smoke --out "$out" "$@"
  if [[ ! -s "$out" ]]; then
    echo "smoke: $out was not produced" >&2
    exit 1
  fi
  if [[ ! -s "$REPRO_VARIANT_CACHE_DIR/variants.pkl" ]]; then
    echo "smoke: variant cache was not persisted to disk" >&2
    exit 1
  fi
  store_tree=("$REPRO_STORE_DIR"/fig67-*)
  if [[ ! -d "${store_tree[0]}/objects" || ! -s "${store_tree[0]}/generation.json" ]]; then
    echo "smoke: artifact store tree (objects/ + generation.json) was not produced" >&2
    exit 1
  fi
  fig8_tree=("$REPRO_STORE_DIR"/fig8-*)
  if [[ ! -d "${fig8_tree[0]}/objects/diff" || ! -s "${fig8_tree[0]}/generation.json" ]]; then
    echo "smoke: fig8 function-sharded store tree (objects/diff + generation.json) was not produced" >&2
    exit 1
  fi
  echo "smoke: benchmark harness produced BENCH_results.json"
  echo "smoke: variant cache persisted and round-tripped"
  echo "smoke: artifact store tree persisted (objects/ + generation.json)"
  echo "smoke: fig8 function-sharded round trip verified (objects/diff persisted, serial == jobs=2 == warm)"
  exit 0
fi

exec python benchmarks/perf/run_bench.py "$@"
