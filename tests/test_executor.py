"""The parallel experiment executor: serial vs jobs=2 bit-identity.

The (program × label × tool) matrices of figures 8, 9 and 10 are pure
functions of seeded inputs; fanning them across processes must reproduce the
serial reports exactly (same rows, same order, same floats).  Also covers
``resolve_jobs`` / ``REPRO_JOBS`` resolution, the supervised scheduler's
failure modes (crashed workers, exhausted retries, timeouts, legacy mode),
the worker-cache degradation counters and the reworked ``escape_ratio``
signature.
"""

import logging
import os
import time

import pytest

from repro.diffing import Asm2Vec, BinDiff, escape_ratio
from repro.evaluation import (figure9, measure_escape, measure_precision,
                              resolve_jobs, run_tasks)
from repro.evaluation.executor import (ExecutorTaskError, executor_mode,
                                       reset_worker_cache,
                                       resolve_task_retries,
                                       resolve_task_timeout, worker_cache,
                                       worker_cache_events)
from repro.workloads.suites import embedded_programs, spec2006_programs

WORKLOADS = spec2006_programs()[:2]
LABELS = ("fission", "fufi.ori")


class TestResolveJobs:
    def test_explicit_jobs_win(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(1) == 1

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs() == 4

    def test_garbage_env_var_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs()

    def test_zero_and_negative_raise(self):
        for bad in (0, -1, -8):
            with pytest.raises(ValueError, match="positive integer"):
                resolve_jobs(bad)

    def test_zero_and_negative_env_raise(self, monkeypatch):
        for bad in ("0", "-2"):
            monkeypatch.setenv("REPRO_JOBS", bad)
            with pytest.raises(ValueError, match="REPRO_JOBS"):
                resolve_jobs()

    def test_non_integer_raises(self):
        for bad in (2.5, "4", True):
            with pytest.raises(ValueError, match="positive integer"):
                resolve_jobs(bad)

    def test_drivers_reject_bad_jobs_at_entry(self):
        """The ValueError must surface before any pool/build work starts."""
        with pytest.raises(ValueError, match="positive integer"):
            measure_precision(WORKLOADS[:1], labels=("fission",), jobs=0)
        from repro.evaluation import measure_overhead
        with pytest.raises(ValueError, match="positive integer"):
            measure_overhead(WORKLOADS[:1], labels=("fission",), jobs=-3)

    def test_empty_env_var_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "  ")
        assert resolve_jobs() == 1


class TestRunTasks:
    def test_serial_preserves_order(self):
        assert run_tasks(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        values = list(range(20))
        assert run_tasks(_square, values, jobs=2) == [v * v for v in values]

    def test_single_task_stays_in_process(self):
        marker = []
        assert run_tasks(lambda t: marker.append(t) or t, [42], jobs=8) == [42]
        assert marker == [42]  # closure ran here, not in a worker

    def test_worker_cache_is_process_local_singleton(self):
        reset_worker_cache()
        assert worker_cache() is worker_cache()


def _square(value):
    return value * value


def _crash_once_then_square(value):
    """Hard-exits the worker the first time it sees value 3 (marker-gated)."""
    marker = os.environ["REPRO_TEST_CRASH_MARKER"]
    if value == 3 and not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(1)
    return value * value


def _raise_on_two(value):
    if value == 2:
        raise ValueError(f"synthetic failure for {value}")
    return value


def _hang_once_then_negate(value):
    """Sleeps far past the test timeout the first time it sees value 1."""
    marker = os.environ["REPRO_TEST_HANG_MARKER"]
    if value == 1 and not os.path.exists(marker):
        open(marker, "w").close()
        time.sleep(60)
    return -value


class TestSupervisorKnobs:
    def test_timeout_default_is_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
        assert resolve_task_timeout() is None

    def test_timeout_env_and_zero_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "2.5")
        assert resolve_task_timeout() == 2.5
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0")
        assert resolve_task_timeout() is None

    def test_timeout_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "soon")
        with pytest.raises(ValueError, match="REPRO_TASK_TIMEOUT"):
            resolve_task_timeout()
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "-1")
        with pytest.raises(ValueError, match="REPRO_TASK_TIMEOUT"):
            resolve_task_timeout()
        with pytest.raises(ValueError, match="timeout"):
            resolve_task_timeout(0)

    def test_retries_default_env_and_validation(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_RETRIES", raising=False)
        assert resolve_task_retries() == 2
        assert resolve_task_retries(0) == 0
        monkeypatch.setenv("REPRO_TASK_RETRIES", "5")
        assert resolve_task_retries() == 5
        monkeypatch.setenv("REPRO_TASK_RETRIES", "-1")
        with pytest.raises(ValueError, match="REPRO_TASK_RETRIES"):
            resolve_task_retries()
        with pytest.raises(ValueError, match="retries"):
            resolve_task_retries(2.5)

    def test_executor_mode(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert executor_mode() == "supervised"
        monkeypatch.setenv("REPRO_EXECUTOR", "legacy")
        assert executor_mode() == "legacy"
        monkeypatch.setenv("REPRO_EXECUTOR", "turbo")
        with pytest.raises(ValueError, match="REPRO_EXECUTOR"):
            executor_mode()


class TestSupervisedFailureModes:
    """The failure modes the supervised scheduler exists for."""

    @pytest.fixture(autouse=True)
    def _fast_backoff(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_BACKOFF", "0.01")
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)

    def test_broken_pool_mid_matrix_recovers(self, tmp_path, monkeypatch):
        """A worker hard-exit (BrokenProcessPool) respawns the pool and the
        run still returns every result in submission order."""
        monkeypatch.setenv("REPRO_TEST_CRASH_MARKER",
                           str(tmp_path / "crashed"))
        values = list(range(6))
        results = run_tasks(_crash_once_then_square, values, jobs=2,
                            retries=2)
        assert results == [v * v for v in values]
        assert (tmp_path / "crashed").exists()  # the crash really happened

    def test_task_failing_every_retry_surfaces_identity(self):
        """A task that raises on every attempt aborts the run cleanly with
        an error naming the task and its attempt count."""
        with pytest.raises(ExecutorTaskError) as excinfo:
            run_tasks(_raise_on_two, list(range(4)), jobs=2, retries=1)
        error = excinfo.value
        assert error.index == 2
        assert error.attempts == 2  # 1 try + 1 retry
        assert "synthetic failure for 2" in str(error)
        assert "[task: 2]" in str(error)

    def test_timeout_retry_succeeds_on_second_attempt(self, tmp_path,
                                                      monkeypatch):
        """A hung worker is killed at the timeout and the retry completes."""
        monkeypatch.setenv("REPRO_TEST_HANG_MARKER", str(tmp_path / "hung"))
        start = time.monotonic()
        results = run_tasks(_hang_once_then_negate, [0, 1, 2], jobs=2,
                            timeout=1.0, retries=2)
        elapsed = time.monotonic() - start
        assert results == [0, -1, -2]
        assert (tmp_path / "hung").exists()
        assert elapsed < 30  # killed at ~1s, nowhere near the 60s sleep

    def test_legacy_mode_is_selectable_and_identical(self, monkeypatch):
        values = list(range(8))
        supervised = run_tasks(_square, values, jobs=2)
        monkeypatch.setenv("REPRO_EXECUTOR", "legacy")
        legacy = run_tasks(_square, values, jobs=2)
        assert supervised == legacy == [v * v for v in values]

    def test_on_result_fires_for_every_task(self):
        seen_serial = []
        run_tasks(_square, [1, 2, 3], jobs=1,
                  on_result=lambda i, r: seen_serial.append((i, r)))
        assert seen_serial == [(0, 1), (1, 4), (2, 9)]
        seen_parallel = []
        run_tasks(_square, [1, 2, 3, 4], jobs=2,
                  on_result=lambda i, r: seen_parallel.append((i, r)))
        assert sorted(seen_parallel) == [(0, 1), (1, 4), (2, 9), (3, 16)]


class TestWorkerCacheDegradationCounters:
    """Best-effort cache startup must warn + count, never die silently."""

    def test_corrupt_legacy_preload_warns_and_counts(self, tmp_path,
                                                     monkeypatch, caplog):
        from repro.core.variant_cache import cache_file_path
        directory = str(tmp_path / "legacy")
        os.makedirs(directory)
        with open(cache_file_path(directory), "wb") as fh:
            fh.write(b"not a pickle at all")
        monkeypatch.setenv("REPRO_VARIANT_CACHE_DIR", directory)
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        reset_worker_cache()
        try:
            with caplog.at_level(logging.WARNING,
                                 logger="repro.evaluation.executor"):
                cache = worker_cache()
            assert cache is not None  # degraded to a cold start, not dead
            events = worker_cache_events()
            assert events["preload_failures"] == 1
            assert any("preload" in record.message
                       for record in caplog.records)
        finally:
            reset_worker_cache()

    def test_unusable_store_tree_warns_and_counts(self, tmp_path,
                                                  monkeypatch, caplog):
        import json
        root = str(tmp_path / "badstore")
        os.makedirs(os.path.join(root, "objects"))
        with open(os.path.join(root, "generation.json"), "w") as fh:
            json.dump({"store_schema": 1, "key_schema": 1, "generation": 1},
                      fh)
        monkeypatch.setenv("REPRO_STORE_DIR", root)
        monkeypatch.delenv("REPRO_VARIANT_CACHE_DIR", raising=False)
        reset_worker_cache()
        try:
            with caplog.at_level(logging.WARNING,
                                 logger="repro.evaluation.executor"):
                cache = worker_cache()
            from repro.evaluation.executor import rooted_store
            assert rooted_store(cache) is None  # storeless degradation
            events = worker_cache_events()
            assert events["store_attach_failures"] == 1
            assert any("attach" in record.message
                       for record in caplog.records)
        finally:
            reset_worker_cache()

    def test_counters_start_at_zero(self):
        reset_worker_cache()
        assert worker_cache_events() == {"preload_failures": 0,
                                         "store_attach_failures": 0}


class TestParallelExperimentsBitIdentical:
    def test_precision_matrix_jobs2_equals_serial(self):
        serial = measure_precision(WORKLOADS, labels=LABELS)
        parallel = measure_precision(WORKLOADS, labels=LABELS, jobs=2)
        assert serial.rows == parallel.rows
        assert serial.matrix() == parallel.matrix()

    def test_precision_respects_repro_jobs_env(self, monkeypatch):
        serial = measure_precision(WORKLOADS[:1], labels=("fission",),
                                   differs=[BinDiff(), Asm2Vec()])
        monkeypatch.setenv("REPRO_JOBS", "2")
        parallel = measure_precision(WORKLOADS[:1], labels=("fission",),
                                     differs=[BinDiff(), Asm2Vec()])
        assert serial.rows == parallel.rows

    def test_ambient_repro_jobs_never_overrides_explicit_cache(self, monkeypatch):
        """REPRO_JOBS in the environment must not bypass a passed cache=
        (the bench's fig8 hit-rate check depends on the cache being used)."""
        from repro.core.variant_cache import VariantCache
        monkeypatch.setenv("REPRO_JOBS", "2")
        cache = VariantCache()
        measure_precision(WORKLOADS[:1], labels=("fission",),
                          differs=[BinDiff()], cache=cache)
        assert cache.misses > 0          # the explicit cache was used
        hits_before = cache.hits
        measure_precision(WORKLOADS[:1], labels=("fission",),
                          differs=[BinDiff()], cache=cache)
        assert cache.hits > hits_before  # ...and hit on the rerun

    def test_escape_report_jobs2_equals_serial(self):
        workloads = embedded_programs()[:1]
        serial = measure_escape(workloads, labels=("sub", "fufi.all"))
        parallel = measure_escape(workloads, labels=("sub", "fufi.all"), jobs=2)
        assert serial.rows == parallel.rows
        for n in (1, 10, 50):
            assert serial.matrix(n) == parallel.matrix(n)

    def test_figure9_jobs2_equals_serial(self):
        serial = figure9(limit=2, tuner_iterations=1)
        parallel = figure9(limit=2, tuner_iterations=1, jobs=2)
        assert serial.rows == parallel.rows
        assert (serial.bintuner_overhead_percent
                == parallel.bintuner_overhead_percent)


class TestWarmStoreParallelDiffing:
    """Figures 9/10 at jobs=2 over a warm shared store vs the serial path.

    The fig6/7 and fig8 matrices have had this guarantee since the store
    landed; these pin it for ``measure_escape`` and ``measure_bintuner``: a
    parallel run whose workers adopt persisted artifacts (variants, feature
    payloads, per-function diff payloads) must stay row-identical to the
    storeless serial reference.
    """

    def test_escape_jobs2_over_warm_store_equals_serial(self, tmp_store):
        from repro.evaluation import measure_escape_sharded
        workloads = embedded_programs()[:1]
        labels = ("sub", "fufi.all")
        serial = measure_escape(workloads, labels=labels)
        # populate the tree (serial in-process pass through the store)...
        cold = measure_escape_sharded(workloads, labels=labels, jobs=1)
        reset_worker_cache()
        # ...then fan out over the warm tree
        warm = measure_escape(workloads, labels=labels, jobs=2)
        assert cold.rows == serial.rows
        assert warm.rows == serial.rows
        for n in (1, 10, 50):
            assert warm.matrix(n) == serial.matrix(n)

    def test_bintuner_jobs2_over_warm_store_equals_serial(self, tmp_store):
        from repro.evaluation import measure_bintuner, measure_bintuner_sharded
        workloads = spec2006_programs()[:2]
        serial = measure_bintuner(workloads, tuner_iterations=1)
        cold = measure_bintuner_sharded(workloads, tuner_iterations=1, jobs=1)
        reset_worker_cache()
        warm = measure_bintuner(workloads, tuner_iterations=1, jobs=2)
        assert cold.rows == serial.rows
        assert warm.rows == serial.rows
        assert (warm.bintuner_overhead_percent
                == serial.bintuner_overhead_percent
                == cold.bintuner_overhead_percent)


class TestEscapeRatioPairs:
    def test_escape_ratio_takes_result_provenance_pairs(self):
        from repro.toolchain import (build_baseline, build_obfuscated,
                                     obfuscator_for)
        workload = embedded_programs()[0]
        vulnerable = workload.vulnerable_functions
        baseline = build_baseline(workload.build())
        differ = Asm2Vec()
        pairs = []
        for label in ("sub", "fufi.all"):
            variant = build_obfuscated(workload.build(), obfuscator_for(label))
            pairs.append((differ.diff(baseline.binary, variant.binary),
                          variant.provenance))
        ratio_1 = escape_ratio(pairs, vulnerable, 1)
        ratio_50 = escape_ratio(pairs, vulnerable, 50)
        assert 0.0 <= ratio_50 <= ratio_1 <= 1.0

    def test_escape_ratio_empty(self):
        assert escape_ratio([], ["f"], 1) == 0.0
