"""Tests for the optimizer passes and pipelines."""


from repro.ir import (Constant, IRBuilder, Linkage, Module, Program,
                      create_function, assert_valid, I64)
from repro.opt import (ConstantFolding, DeadCodeElimination,
                       DeadFunctionElimination, Inliner, OptOptions,
                       PassManager, SimplifyCFG, build_pipeline, function_size,
                       optimize_program)
from repro.vm import run_program


def make_program(module):
    return Program("p", [module])


class TestConstantFolding:
    def test_folds_arithmetic_chain(self):
        module = Module("m")
        f = create_function(module, "main", I64, [])
        b = IRBuilder(f.entry_block)
        b.ret(b.add(b.mul(6, 7), 0))
        ConstantFolding().run(make_program(module))
        # after folding, only the ret remains and it returns a constant
        insts = list(f.instructions())
        assert len(insts) == 1
        assert isinstance(insts[0].value, Constant)
        assert insts[0].value.value == 42

    def test_folds_constant_branch(self):
        module = Module("m")
        f = create_function(module, "main", I64, [])
        b = IRBuilder(f.entry_block)
        then = f.add_block("then")
        other = f.add_block("other")
        b.cond_br(b.icmp("slt", 1, 2), then, other)
        IRBuilder(then).ret(1)
        IRBuilder(other).ret(0)
        program = make_program(module)
        ConstantFolding().run(program)
        SimplifyCFG().run(program)
        assert run_program(program).exit_value == 1
        assert f.block_count() <= 2

    def test_preserves_behaviour_on_demo(self, demo_program):
        before = run_program(demo_program).observable()
        ConstantFolding().run(demo_program)
        assert run_program(demo_program).observable() == before


class TestDCE:
    def test_removes_unused_pure_instruction(self):
        module = Module("m")
        f = create_function(module, "main", I64, [])
        b = IRBuilder(f.entry_block)
        b.add(1, 2)   # unused
        b.ret(7)
        DeadCodeElimination().run(make_program(module))
        assert len(list(f.instructions())) == 1

    def test_removes_write_only_alloca(self):
        module = Module("m")
        f = create_function(module, "main", I64, [])
        b = IRBuilder(f.entry_block)
        slot = b.alloca(I64)
        b.store(3, slot)
        b.ret(9)
        DeadCodeElimination().run(make_program(module))
        assert len(list(f.instructions())) == 1

    def test_keeps_observable_stores(self, demo_program):
        before = run_program(demo_program).observable()
        DeadCodeElimination().run(demo_program)
        assert run_program(demo_program).observable() == before

    def test_dead_function_elimination_respects_entry_and_linkage(self):
        module = Module("m")
        dead = create_function(module, "dead", I64, [])
        IRBuilder(dead.entry_block).ret(0)
        exported = create_function(module, "api", I64, [],
                                   linkage=Linkage.EXPORTED)
        IRBuilder(exported.entry_block).ret(0)
        main = create_function(module, "main", I64, [])
        IRBuilder(main.entry_block).ret(0)
        DeadFunctionElimination().run(make_program(module))
        assert module.get_function("dead") is None
        assert module.get_function("api") is not None
        assert module.get_function("main") is not None


class TestSimplifyCFG:
    def test_merges_straight_line_blocks(self):
        module = Module("m")
        f = create_function(module, "main", I64, [])
        b = IRBuilder(f.entry_block)
        middle = f.add_block("middle")
        b.br(middle)
        IRBuilder(middle).ret(5)
        SimplifyCFG().run(make_program(module))
        assert f.block_count() == 1
        assert run_program(make_program(module)).exit_value == 5

    def test_removes_unreachable_blocks(self):
        module = Module("m")
        f = create_function(module, "main", I64, [])
        IRBuilder(f.entry_block).ret(1)
        dead = f.add_block("dead")
        IRBuilder(dead).ret(2)
        SimplifyCFG().run(make_program(module))
        assert f.block_count() == 1


class TestInliner:
    def build_caller_callee(self):
        module = Module("m")
        callee = create_function(module, "callee", I64, [I64])
        cb = IRBuilder(callee.entry_block)
        cb.ret(cb.add(callee.args[0], 100))
        main = create_function(module, "main", I64, [])
        mb = IRBuilder(main.entry_block)
        mb.ret(mb.call(callee, [7]))
        return module, callee, main

    def test_inline_small_callee(self):
        module, callee, main = self.build_caller_callee()
        program = make_program(module)
        Inliner(threshold=30).run(program)
        assert_valid(program)
        assert run_program(program).exit_value == 107
        # the call disappeared from main
        from repro.ir import Call
        assert not any(isinstance(i, Call) for i in main.instructions())

    def test_threshold_prevents_inlining(self):
        module, callee, main = self.build_caller_callee()
        Inliner(threshold=0).run(make_program(module))
        from repro.ir import Call
        assert any(isinstance(i, Call) for i in main.instructions())

    def test_recursive_function_not_inlined(self, demo_program):
        # fib-style recursion is exercised by the workloads; here we only check
        # the inliner leaves the demo program semantics intact
        before = run_program(demo_program).observable()
        Inliner().run(demo_program)
        assert_valid(demo_program)
        assert run_program(demo_program).observable() == before

    def test_function_size(self, demo_module):
        assert function_size(demo_module.get_function("scale")) == 3


class TestPipelines:
    def test_o0_pipeline_is_empty(self):
        assert build_pipeline(OptOptions(level=0)) == []

    def test_o2_pipeline_contains_inliner(self):
        names = [p.name for p in build_pipeline(OptOptions(level=2))]
        assert "inline" in names
        assert "constant-folding" in names

    def test_optimize_program_preserves_semantics(self, demo_program):
        baseline = run_program(demo_program).observable()
        for level in (0, 1, 2, 3):
            optimized = optimize_program(demo_program,
                                         OptOptions(level=level, lto=level >= 2))
            assert run_program(optimized).observable() == baseline

    def test_optimize_program_does_not_mutate_input(self, demo_program):
        before = sum(1 for f in demo_program.defined_functions()
                     for _ in f.instructions())
        optimize_program(demo_program)
        after = sum(1 for f in demo_program.defined_functions()
                    for _ in f.instructions())
        assert before == after

    def test_o2_reduces_or_keeps_instruction_count(self, demo_program):
        unoptimized = sum(1 for f in demo_program.defined_functions()
                          for _ in f.instructions())
        optimized = optimize_program(demo_program)
        count = sum(1 for f in optimized.defined_functions()
                    for _ in f.instructions())
        assert count <= unoptimized * 2  # inlining may duplicate small bodies

    def test_pass_manager_history(self, demo_program):
        manager = PassManager(build_pipeline(OptOptions()), verify_each=True)
        manager.run(demo_program.link())
        assert manager.history
