"""Seeded fault injection: spec parsing, deterministic firing, chaos runs.

The harness is only useful if its chaos is *reproducible*: firing decisions
must be pure functions of (kind, seed, token, attempt), the spec grammar
must reject typos loudly, and a full fig8 matrix under injected worker
crashes + store corruption must still merge bit-identical to the fault-free
serial reference (the ISSUE 8 acceptance criterion; the CI chaos job runs
the scaled-up version through ``scripts/chaos_check.py``).
"""

import pytest

from repro.evaluation.diff_sharding import (DiffShardStats,
                                            measure_precision_sharded)
from repro.evaluation.executor import reset_worker_cache, run_tasks
from repro.evaluation.precision import measure_precision
from repro.faults import (CRASH_EXIT_CODE, DEFAULT_HANG_SECONDS,
                          FaultInjected, FaultInjector, FaultRule,
                          active_injector, parse_faults, reset_injector)
from repro.workloads.suites import spec2006_programs

WORKLOADS = spec2006_programs()[:1]
LABELS = ("fission",)


@pytest.fixture(autouse=True)
def _clean_injector(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    reset_injector()
    yield
    reset_injector()


class TestSpecParsing:
    def test_full_spec(self):
        rules = parse_faults("worker_crash:p=0.2,seed=7;"
                             "store_corrupt:p=0.1,seed=7;task_hang:p=0.05")
        assert set(rules) == {"worker_crash", "store_corrupt", "task_hang"}
        assert rules["worker_crash"].probability == 0.2
        assert rules["worker_crash"].seed == 7
        assert rules["task_hang"].seed == 0  # default
        assert rules["task_hang"].seconds == DEFAULT_HANG_SECONDS

    def test_hang_seconds(self):
        rules = parse_faults("task_hang:p=1,seconds=0.25")
        assert rules["task_hang"].seconds == 0.25

    def test_empty_spec_is_empty(self):
        assert parse_faults("") == {}
        assert parse_faults(" ; ; ") == {}

    @pytest.mark.parametrize("bad, match", [
        ("disk_full:p=0.5", "unknown fault kind"),
        ("worker_crash:p=0.2;worker_crash:p=0.3", "duplicate"),
        ("worker_crash:p", "malformed parameter"),
        ("worker_crash:seed=3", "missing p="),
        ("worker_crash:p=1.5", r"within \[0, 1\]"),
        ("worker_crash:p=-0.1", r"within \[0, 1\]"),
        ("worker_crash:p=lots", "invalid value"),
        ("worker_crash:p=0.5,volume=11", "unknown parameter"),
        ("task_hang:p=0.5,seconds=0", "seconds must be positive"),
    ])
    def test_malformed_specs_raise(self, bad, match):
        with pytest.raises(ValueError, match=match):
            parse_faults(bad)


class TestDeterministicFiring:
    def test_same_inputs_same_decision(self):
        rule = FaultRule("worker_crash", 0.3, seed=11)
        decisions = [rule.fires(f"task:{i}", a)
                     for i in range(50) for a in range(3)]
        again = [rule.fires(f"task:{i}", a)
                 for i in range(50) for a in range(3)]
        assert decisions == again
        # a 30% rule over 150 sites fires a plausible number of times
        assert 20 < sum(decisions) < 70

    def test_seed_changes_the_plan(self):
        a = FaultRule("worker_crash", 0.3, seed=1)
        b = FaultRule("worker_crash", 0.3, seed=2)
        assert [a.fires(f"t{i}") for i in range(64)] \
            != [b.fires(f"t{i}") for i in range(64)]

    def test_attempt_rerolls(self):
        rule = FaultRule("task_error", 0.5, seed=3)
        per_attempt = [rule.fires("task:0", attempt) for attempt in range(20)]
        assert True in per_attempt and False in per_attempt

    def test_probability_extremes(self):
        assert not FaultRule("worker_crash", 0.0).fires("x")
        assert FaultRule("worker_crash", 1.0).fires("x")

    def test_crash_exit_code_is_distinctive(self):
        assert CRASH_EXIT_CODE not in (0, 1)


class TestInjector:
    def test_task_error_raises_and_counts(self):
        injector = FaultInjector(parse_faults("task_error:p=1"))
        with pytest.raises(FaultInjected):
            injector.maybe_error("task:0")
        assert injector.fired["task_error"] == 1

    def test_corrupt_payload_fires_once_per_token(self):
        injector = FaultInjector(parse_faults("store_corrupt:p=1"))
        data = b"x" * 64
        first = injector.corrupt_payload("variant:abc", data)
        assert first != data and first.endswith(b"\xde\xad\xbe\xef")
        # the second write of the same object goes through clean, so the
        # post-quarantine rebuild persists a good copy (self-healing
        # converges instead of corrupting forever)
        assert injector.corrupt_payload("variant:abc", data) == data
        assert injector.corrupt_payload("variant:other", data) != data

    def test_active_injector_tracks_env(self, monkeypatch):
        assert active_injector() is None
        monkeypatch.setenv("REPRO_FAULTS", "task_error:p=1")
        injector = active_injector()
        assert injector is not None and "task_error" in injector.rules
        assert active_injector() is injector  # cached per spec
        monkeypatch.setenv("REPRO_FAULTS", "task_error:p=0.5")
        assert active_injector() is not injector  # spec change rebuilds
        monkeypatch.delenv("REPRO_FAULTS")
        assert active_injector() is None


def _identity(value):
    return value


class TestFaultsInTheExecutor:
    def test_serial_path_never_injects(self, monkeypatch):
        """jobs=1 is the differential reference: REPRO_FAULTS must not
        touch it even at p=1."""
        monkeypatch.setenv("REPRO_FAULTS", "task_error:p=1;worker_crash:p=1")
        reset_injector()
        assert run_tasks(_identity, [1, 2, 3], jobs=1) == [1, 2, 3]

    def test_injected_task_errors_are_retried_to_success(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_BACKOFF", "0.01")
        monkeypatch.setenv("REPRO_FAULTS", "task_error:p=0.4,seed=5")
        reset_injector()
        values = list(range(8))
        assert run_tasks(_identity, values, jobs=2, retries=6) == values

    def test_injected_crashes_recover_bit_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_BACKOFF", "0.01")
        monkeypatch.setenv("REPRO_FAULTS", "worker_crash:p=0.3,seed=7")
        reset_injector()
        values = list(range(8))
        assert run_tasks(_identity, values, jobs=2, retries=10) == values

    def test_injected_hang_trips_timeout_then_succeeds(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_BACKOFF", "0.01")
        # fire-pattern: deterministic; p=0.4 over 4 tasks × attempts hangs
        # at least one task's first attempt with seed 1
        monkeypatch.setenv("REPRO_FAULTS",
                           "task_hang:p=0.4,seed=1,seconds=30")
        reset_injector()
        values = list(range(4))
        assert run_tasks(_identity, values, jobs=2, timeout=1.0,
                         retries=10) == values


class TestChaosDifferential:
    """The acceptance criterion, test-sized: fig8 sharded under seeded
    crashes + store corruption stays bit-identical to fault-free serial."""

    def _rows(self, report):
        return [(r.program, r.suite, r.tool, r.label, r.precision,
                 r.similarity_score) for r in report.rows]

    def test_fig8_chaos_matches_fault_free_serial(self, tmp_store,
                                                  monkeypatch):
        from repro.diffing import all_differs
        differs = all_differs()[:1]
        reference = self._rows(measure_precision(WORKLOADS, labels=LABELS,
                                                 differs=differs))
        monkeypatch.setenv("REPRO_TASK_BACKOFF", "0.01")
        monkeypatch.setenv("REPRO_TASK_RETRIES", "10")
        monkeypatch.setenv("REPRO_MAX_POOL_FAILURES", "10")
        monkeypatch.setenv("REPRO_FAULTS",
                           "worker_crash:p=0.2,seed=7;"
                           "store_corrupt:p=0.1,seed=7")
        reset_injector()
        reset_worker_cache()
        try:
            stats = DiffShardStats()
            chaos = self._rows(measure_precision_sharded(
                WORKLOADS, labels=LABELS, differs=differs, jobs=2,
                stats=stats))
        finally:
            reset_injector()
            reset_worker_cache()
        assert chaos == reference
        assert stats.units_total > 0
