"""Tests for the fusion primitive: pair selection, parameter compression, the
ctrl dispatch, tagged pointers, trampolines, deep fusion and statistics."""


from repro.core import Fusion, FusionConfig, ProvenanceMap
from repro.core.fusion import TAG_FUSED_A, TAG_FUSED_B
from repro.core.stats import FusionStats
from repro.ir import (Call, Function, IRBuilder, Linkage, Module, Program,
                      assert_valid, create_function, I64, F64)
from repro.vm import run_program
from tests.conftest import build_demo_program


def run_fusion(program, config=None, seed=0x5EED, candidate_filter=None):
    linked = program.link()
    module = linked.modules[0]
    provenance = ProvenanceMap(f.name for f in module.defined_functions())
    stats = FusionStats()
    fusion = Fusion(config or FusionConfig(), provenance, stats, seed=seed)
    created = fusion.run_on_module(module, entry="main",
                                   candidate_filter=candidate_filter)
    assert_valid(linked)
    return linked, module, provenance, stats, created


class TestPairSelection:
    def test_incompatible_return_types_not_paired(self):
        module = Module("m")
        int_fn = create_function(module, "int_fn", I64, [I64])
        IRBuilder(int_fn.entry_block).ret(1)
        float_fn = create_function(module, "float_fn", F64, [I64])
        IRBuilder(float_fn.entry_block).ret(1.0)
        main = create_function(module, "main", I64, [])
        IRBuilder(main.entry_block).ret(0)
        _, merged_module, _, stats, created = run_fusion(Program("p", [module]))
        assert created == []
        assert stats.fusfuncs_created == 0

    def test_directly_related_functions_not_paired(self):
        module = Module("m")
        callee = create_function(module, "callee", I64, [I64])
        IRBuilder(callee.entry_block).ret(1)
        caller = create_function(module, "caller", I64, [I64])
        cb = IRBuilder(caller.entry_block)
        cb.ret(cb.call(callee, [caller.args[0]]))
        main = create_function(module, "main", I64, [])
        IRBuilder(main.entry_block).ret(0)
        _, _, _, _, created = run_fusion(Program("p", [module]))
        assert created == []

    def test_variadic_functions_excluded(self, demo_program):
        module = demo_program.modules[0]
        from repro.ir import FunctionType
        variadic = Function("logf", FunctionType(I64, [I64], variadic=True))
        variadic.add_block("entry")
        IRBuilder(variadic.entry_block).ret(0)
        module.add_function(variadic)
        _, merged_module, _, _, created = run_fusion(demo_program)
        for fused in created:
            assert "logf" not in fused.attributes["khaos_sides"]

    def test_entry_function_never_fused(self):
        _, module, _, _, created = run_fusion(build_demo_program())
        for fused in created:
            assert "main" not in fused.attributes["khaos_sides"]


class TestFusionTransform:
    def test_preserves_semantics(self):
        baseline = run_program(build_demo_program())
        linked, _, _, _, created = run_fusion(build_demo_program())
        assert created
        assert run_program(linked).observable() == baseline.observable()

    def test_fused_function_shape(self):
        _, module, _, _, created = run_fusion(build_demo_program())
        for fused in created:
            assert fused.args[0].name == "ctrl"
            assert fused.attributes["khaos_kind"] == "fusfunc"
            # both sides' entries are reachable from the ctrl dispatch
            assert fused.block_count() >= 3

    def test_originals_removed_and_callsites_redirected(self):
        _, module, _, _, created = run_fusion(build_demo_program())
        fused_sides = [side for f in created for side in f.attributes["khaos_sides"]]
        for side in fused_sides:
            survivor = module.get_function(side)
            if survivor is not None:
                # only trampolines may keep the original name
                assert survivor.attributes.get("khaos_kind") == "trampoline"

    def test_provenance_maps_fused_to_both_sides(self):
        _, _, provenance, _, created = run_fusion(build_demo_program())
        for fused in created:
            side_a, side_b = fused.attributes["khaos_sides"]
            assert provenance.is_correct_match(side_a, fused.name)
            assert provenance.is_correct_match(side_b, fused.name)

    def test_parameter_compression_reduces_parameters(self):
        _, _, _, stats, created = run_fusion(build_demo_program())
        if created:
            assert stats.avg_reduced_params >= 0
            for fused in created:
                # ctrl + compressed params never exceeds the sum + 1
                assert len(fused.args) <= 1 + 4

    def test_compression_can_be_disabled(self):
        # exclude the address-taken pair (scale/mix): identical-signature
        # address-taken functions always share a layout for correctness
        config = FusionConfig(enable_parameter_compression=False)
        _, _, _, stats, created = run_fusion(
            build_demo_program(), config,
            candidate_filter=lambda f: f.name not in ("scale", "mix"))
        assert stats.avg_reduced_params == 0

    def test_stats_ratio(self):
        _, _, _, stats, created = run_fusion(build_demo_program())
        assert stats.fused_functions == 2 * stats.fusfuncs_created
        assert 0 <= stats.ratio <= 1

    def test_candidate_filter_restricts_fusion(self):
        _, _, _, _, created = run_fusion(
            build_demo_program(), candidate_filter=lambda f: False)
        assert created == []

    def test_seed_changes_pairing_deterministically(self):
        _, _, _, _, first = run_fusion(build_demo_program(), seed=1)
        _, _, _, _, second = run_fusion(build_demo_program(), seed=1)
        assert ([f.attributes["khaos_sides"] for f in first]
                == [f.attributes["khaos_sides"] for f in second])


class TestTaggedPointersAndTrampolines:
    def test_indirect_call_through_fused_pointer_works(self):
        # scale/mix are address-taken in the demo program; select_op calls them
        # through a function pointer, so fusing them exercises the tag path
        baseline = run_program(build_demo_program())
        linked, module, _, _, created = run_fusion(build_demo_program())
        sides = {side for f in created for side in f.attributes["khaos_sides"]}
        assert {"scale", "mix"} & sides, "address-taken functions should fuse"
        assert run_program(linked).observable() == baseline.observable()

    def test_tag_intrinsics_inserted(self):
        _, module, _, _, created = run_fusion(build_demo_program())
        names = set(module.functions)
        assert "__khaos_tag_ptr" in names
        assert "__khaos_extract_tag" in names
        assert "__khaos_clear_tag" in names

    def test_tag_constants_encode_ctrl(self):
        assert TAG_FUSED_A >> 1 & 1 == 1
        assert TAG_FUSED_B >> 1 & 1 == 0
        assert TAG_FUSED_A & 1 and TAG_FUSED_B & 1

    def test_exported_function_gets_trampoline(self):
        module = Module("m")
        api_a = create_function(module, "api_a", I64, [I64],
                                linkage=Linkage.EXPORTED)
        ba = IRBuilder(api_a.entry_block)
        ba.ret(ba.add(api_a.args[0], 1))
        api_b = create_function(module, "api_b", I64, [I64],
                                linkage=Linkage.EXPORTED)
        bb = IRBuilder(api_b.entry_block)
        bb.ret(bb.mul(api_b.args[0], 2))
        main = create_function(module, "main", I64, [])
        bm = IRBuilder(main.entry_block)
        bm.ret(bm.add(bm.call(api_a, [1]), bm.call(api_b, [3])))

        program = Program("p", [module])
        baseline = run_program(program.clone())
        linked, merged, _, _, created = run_fusion(program)
        assert created
        trampoline = merged.get_function("api_a")
        assert trampoline is not None
        assert trampoline.attributes["khaos_kind"] == "trampoline"
        assert run_program(linked).exit_value == baseline.exit_value


class TestDeepFusion:
    def test_deep_fusion_merges_blocks(self):
        config = FusionConfig(enable_deep_fusion=True)
        _, _, _, stats, created = run_fusion(build_demo_program(), config)
        # at least some innocuous blocks are observed; merging depends on the
        # self-containment check, so only require a non-negative count
        assert stats.deep_fused_blocks >= 0
        assert stats.avg_innocuous_blocks >= 0

    def test_deep_fusion_can_be_disabled(self):
        config = FusionConfig(enable_deep_fusion=False)
        _, _, _, stats, _ = run_fusion(build_demo_program(), config)
        assert stats.deep_fused_blocks == 0

    def test_deep_fusion_preserves_semantics_on_workload(self):
        from repro.workloads import find_program
        workload = find_program("458.sjeng")
        baseline = run_program(workload.build())
        linked, _, _, stats, _ = run_fusion(workload.build(),
                                            FusionConfig(enable_deep_fusion=True,
                                                         max_deep_fusion_blocks=4))
        assert run_program(linked).observable() == baseline.observable()
