"""Tests for the IR interpreter and its cost model."""

import pytest

from repro.ir import (FunctionType, GlobalVariable, IRBuilder, Module,
                      PointerType, Program, create_function, F64, I64)
from repro.vm import (CostModel, ExecutionError, Interpreter, StepLimitExceeded,
                      run_program, REGISTER_ARG_SLOTS)


def single_function_program(build_body, return_type=I64, params=(),
                            name="main"):
    module = Module("m")
    f = create_function(module, name, return_type, list(params))
    build_body(module, f, IRBuilder(f.entry_block))
    return Program("p", [module])


class TestArithmetic:
    def test_basic_integer_ops(self):
        def body(module, f, b):
            value = b.add(b.mul(6, 7), b.sub(10, 4))
            value = b.xor(value, 5)
            b.ret(value)
        assert run_program(single_function_program(body)).exit_value == (48 ^ 5)

    def test_division_semantics_truncate_toward_zero(self):
        def body(module, f, b):
            b.ret(b.sdiv(-7, 2))
        assert run_program(single_function_program(body)).exit_value == -3

    def test_remainder_matches_c_semantics(self):
        def body(module, f, b):
            b.ret(b.srem(-7, 2))
        assert run_program(single_function_program(body)).exit_value == -1

    def test_division_by_zero_yields_zero(self):
        def body(module, f, b):
            b.ret(b.sdiv(5, 0))
        assert run_program(single_function_program(body)).exit_value == 0

    def test_large_value_remainder_is_exact(self):
        def body(module, f, b):
            b.ret(b.srem(2 ** 60 + 3, 16))
        assert run_program(single_function_program(body)).exit_value == (2 ** 60 + 3) % 16

    def test_wrapping_at_64_bits(self):
        def body(module, f, b):
            b.ret(b.add(2 ** 63 - 1, 1))
        assert run_program(single_function_program(body)).exit_value == -(2 ** 63)

    def test_float_ops_and_casts(self):
        def body(module, f, b):
            x = b.cast("sitofp", 9, F64)
            y = b.fdiv(x, 2.0)
            b.ret(b.cast("fptosi", b.fmul(y, 10.0), I64))
        assert run_program(single_function_program(body)).exit_value == 45


class TestMemoryAndControlFlow:
    def test_alloca_load_store(self):
        def body(module, f, b):
            slot = b.alloca(I64)
            b.store(11, slot)
            b.ret(b.load(slot))
        assert run_program(single_function_program(body)).exit_value == 11

    def test_array_indexing(self):
        def body(module, f, b):
            data = b.alloca(I64, count=4)
            for i in range(4):
                b.store(i * i, b.gep(data, i))
            total = b.add(b.load(b.gep(data, 2)), b.load(b.gep(data, 3)))
            b.ret(total)
        assert run_program(single_function_program(body)).exit_value == 13

    def test_out_of_bounds_store_raises(self):
        def body(module, f, b):
            data = b.alloca(I64, count=2)
            b.store(1, b.gep(data, 5))
            b.ret(0)
        with pytest.raises(ExecutionError):
            run_program(single_function_program(body))

    def test_global_variable_initialisation(self):
        module = Module("m")
        g = GlobalVariable("answer", I64, initializer=42)
        module.add_global(g)
        f = create_function(module, "main", I64, [])
        b = IRBuilder(f.entry_block)
        b.ret(b.load(g))
        assert run_program(Program("p", [module])).exit_value == 42

    def test_switch_dispatch(self):
        def body(module, f, b):
            from repro.ir import Constant
            one = f.add_block("one")
            two = f.add_block("two")
            default = f.add_block("default")
            b.switch(b.add(1, 1), default,
                     [(Constant(I64, 1), one), (Constant(I64, 2), two)])
            b.position_at_end(one)
            b.ret(10)
            b.position_at_end(two)
            b.ret(20)
            b.position_at_end(default)
            b.ret(30)
        assert run_program(single_function_program(body)).exit_value == 20

    def test_select(self):
        def body(module, f, b):
            b.ret(b.select(b.icmp("sgt", 3, 2), 111, 222))
        assert run_program(single_function_program(body)).exit_value == 111

    def test_step_limit(self, demo_program):
        with pytest.raises(StepLimitExceeded):
            Interpreter(demo_program, max_steps=10).run()


class TestCallsAndIntrinsics:
    def test_direct_and_indirect_calls(self, demo_program):
        result = run_program(demo_program)
        # classify(-5)=5, classify(0)=0, classify(7)=21, scale=21, mix=10,
        # select_op(0,2,3)=scale(2,3)=9, select_op(1,2,3)=mix(2,3)=2
        assert result.output == [5, 0, 21, 21, 10, 9, 2]
        assert result.exit_value == 0

    def test_putint_and_inputs(self):
        module = Module("m")
        putint = module.declare_function("putint", FunctionType(I64, [I64]))
        input_i64 = module.declare_function("input_i64", FunctionType(I64, [I64]))
        f = create_function(module, "main", I64, [])
        b = IRBuilder(f.entry_block)
        b.call(putint, [b.call(input_i64, [0])])
        b.call(putint, [b.call(input_i64, [99])])
        b.ret(0)
        result = run_program(Program("p", [module]), inputs=[17])
        assert result.output == [17, 0]

    def test_tag_intrinsics_round_trip(self, demo_module):
        module = demo_module
        scale = module.get_function("scale")
        pointer = PointerType(FunctionType(I64, [], variadic=True))
        tag_ptr = module.declare_function("__khaos_tag_ptr",
                                          FunctionType(pointer, [pointer, I64]))
        extract = module.declare_function("__khaos_extract_tag",
                                          FunctionType(I64, [pointer]))
        f = create_function(module, "tagcheck", I64, [])
        b = IRBuilder(f.entry_block)
        tagged = b.call(tag_ptr, [scale, 3])
        b.ret(b.call(extract, [tagged]))
        program = Program("p", [module], entry="tagcheck")
        assert run_program(program).exit_value == 3

    def test_unknown_external_returns_zero(self):
        module = Module("m")
        mystery = module.declare_function("mystery", FunctionType(I64, [I64]))
        f = create_function(module, "main", I64, [])
        b = IRBuilder(f.entry_block)
        b.ret(b.call(mystery, [1]))
        assert run_program(Program("p", [module])).exit_value == 0

    def test_missing_entry_raises(self):
        module = Module("m")
        with pytest.raises(ExecutionError):
            run_program(Program("p", [module]))


class TestCostModel:
    def test_stack_arguments_cost_more(self):
        model = CostModel()
        few = model.call_cost(REGISTER_ARG_SLOTS)
        many = model.call_cost(REGISTER_ARG_SLOTS + 2)
        assert many > few
        assert many - few == 2 * model.call_stack_arg

    def test_indirect_call_costs_more(self):
        model = CostModel()
        assert model.call_cost(2, indirect=True) > model.call_cost(2)

    def test_execution_accumulates_cycles(self, demo_program):
        result = run_program(demo_program)
        assert result.cycles > result.instructions_executed > 0
        assert result.call_count > 5
