"""Tests for the fission primitive: region identification (Algorithm 1),
data-flow and control-flow rebuild, side conditions and statistics."""


from repro.analysis import CallGraph
from repro.core import Fission, FissionConfig, ProvenanceMap, RegionIdentifier
from repro.core.stats import FissionStats
from repro.ir import (Call, FunctionType, IRBuilder, Module, PointerType,
                      assert_valid, create_function, I64)
from repro.vm import run_program
from tests.conftest import build_demo_program


def run_fission(program, config=None):
    linked = program.link()
    module = linked.modules[0]
    provenance = ProvenanceMap(f.name for f in module.defined_functions())
    stats = FissionStats()
    fission = Fission(config or FissionConfig(), provenance, stats)
    created = fission.run_on_module(module, entry="main")
    assert_valid(linked)
    return linked, module, provenance, stats, created


class TestRegionIdentification:
    def test_candidates_exclude_whole_function(self, demo_module):
        classify = demo_module.get_function("classify")
        identifier = RegionIdentifier(classify)
        for region in identifier.candidate_regions():
            assert region.head is not classify.entry_block
            assert len(region.blocks) < classify.block_count()

    def test_chosen_regions_do_not_intersect(self, demo_module):
        classify = demo_module.get_function("classify")
        regions = RegionIdentifier(classify).identify()
        seen = set()
        for region in regions:
            assert not (region.block_set & seen)
            seen |= region.block_set

    def test_value_prefers_cold_code(self, demo_module):
        classify = demo_module.get_function("classify")
        identifier = RegionIdentifier(classify)
        candidates = {r.head.name: r for r in identifier.candidate_regions()}
        # the loop body is hot (inside a loop); a region headed there must have
        # a higher cost than the cold "negative" branch if both are candidates
        if "body" in candidates and "negative" in candidates:
            assert candidates["body"].cost > candidates["negative"].cost

    def test_setjmp_region_rejected(self):
        module = Module("m")
        setjmp = module.declare_function("setjmp",
                                         FunctionType(I64, [PointerType(I64)]))
        f = create_function(module, "guarded", I64, [I64])
        b = IRBuilder(f.entry_block)
        work = f.add_block("work")
        out = f.add_block("out")
        b.br(work)
        b.position_at_end(work)
        buf = b.alloca(I64, count=4)
        b.call(setjmp, [buf])
        b.br(out)
        b.position_at_end(out)
        b.ret(f.args[0])
        regions = RegionIdentifier(f, FissionConfig(min_function_blocks=1,
                                                    min_region_blocks=1)).identify()
        for region in regions:
            names = {block.name for block in region.blocks}
            assert "work" not in names

    def test_eh_pair_kept_together(self):
        module = Module("m")
        helper = module.declare_function("may_throw", FunctionType(I64, [I64]))
        f = create_function(module, "eh", I64, [I64])
        b = IRBuilder(f.entry_block)
        tryb = f.add_block("try")
        catchb = f.add_block("catch")
        after = f.add_block("after")
        b.br(tryb)
        b.position_at_end(tryb)
        risky = b.call(helper, [f.args[0]], may_throw=True)
        b.cond_br(b.icmp("slt", risky, 0), catchb, after)
        b.position_at_end(catchb)
        b.ret(-1)
        b.position_at_end(after)
        b.ret(risky)
        f.eh_pairs.append(("try", "catch"))
        regions = RegionIdentifier(f, FissionConfig(min_function_blocks=1,
                                                    min_region_blocks=1)).identify()
        for region in regions:
            names = {block.name for block in region.blocks}
            assert ("try" in names) == ("catch" in names)


class TestFissionTransform:
    def test_creates_sepfuncs_and_preserves_semantics(self):
        baseline = run_program(build_demo_program())
        linked, module, provenance, stats, created = run_fission(build_demo_program())
        assert created, "fission should split at least one function"
        assert run_program(linked).observable() == baseline.observable()

    def test_sepfunc_metadata_and_provenance(self):
        _, module, provenance, stats, created = run_fission(build_demo_program())
        for sepfunc in created:
            assert sepfunc.attributes["khaos_kind"] == "sepfunc"
            origin = sepfunc.attributes["khaos_origin"]
            assert provenance.is_correct_match(origin, sepfunc.name)
            # the remFunc keeps the original name
            assert provenance.is_correct_match(origin, origin)

    def test_remfunc_calls_its_sepfuncs(self):
        _, module, _, _, created = run_fission(build_demo_program())
        graph = CallGraph(module)
        for sepfunc in created:
            origin = sepfunc.attributes["khaos_origin"]
            assert graph.calls(origin, sepfunc.name)

    def test_remfunc_shrinks(self):
        original = build_demo_program()
        original_blocks = original.find_function("classify").block_count()
        _, module, _, _, created = run_fission(build_demo_program())
        classify_seps = [f for f in created
                         if f.attributes["khaos_origin"] == "classify"]
        if classify_seps:
            assert module.get_function("classify").block_count() < original_blocks + 2

    def test_stats_populated(self):
        _, _, _, stats, created = run_fission(build_demo_program())
        assert stats.sepfuncs_created == len(created)
        assert stats.ratio > 0
        assert stats.avg_sepfunc_blocks >= 1
        assert 0 < stats.reduction_ratio <= 1

    def test_respects_max_parameters(self):
        config = FissionConfig(max_parameters=0)
        _, _, _, _, created = run_fission(build_demo_program(), config)
        # with no parameters allowed, only regions with no inputs/outputs split
        for sepfunc in created:
            assert len(sepfunc.args) == 0

    def test_min_function_blocks_threshold(self):
        config = FissionConfig(min_function_blocks=100)
        _, _, _, _, created = run_fission(build_demo_program(), config)
        assert created == []

    def test_no_obfuscate_attribute_respected(self):
        program = build_demo_program()
        program.find_function("classify").attributes["no_obfuscate"] = True
        _, _, _, _, created = run_fission(program)
        assert all(f.attributes["khaos_origin"] != "classify" for f in created)

    def test_fission_on_workload_program(self):
        from repro.workloads import find_program
        workload = find_program("429.mcf")
        baseline = run_program(workload.build())
        linked, module, provenance, stats, created = run_fission(workload.build())
        assert stats.ratio > 0.3   # a realistic program splits many functions
        assert run_program(linked).observable() == baseline.observable()
