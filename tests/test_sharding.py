"""The sharded fig6/7 scheduler: serial vs jobs=2 bit-identity + store reuse.

The overhead matrices are pure functions of seeded inputs; sharding them
across processes must reproduce the serial reports exactly (same rows, same
order, same cycle counts), and workers attached to a warm shared store must
rebuild nothing.
"""


from repro.core.variant_cache import VariantCache
from repro.evaluation import (figure6, figure7, measure_overhead,
                              measure_overhead_sharded, shard_overhead_matrix)
from repro.evaluation.sharding import ShardBatch
from repro.store import KIND_VARIANT, ArtifactStore
from repro.workloads.suites import spec2006_programs

WORKLOADS = spec2006_programs()[:2]
LABELS = ("fission", "fufi.ori")


def _rows(report):
    return [(r.program, r.suite, r.label, r.baseline_cycles, r.cycles)
            for r in report.rows]


class TestDeterministicPartitioning:
    def test_one_shard_per_workload_in_order(self):
        shards = shard_overhead_matrix(WORKLOADS, LABELS)
        assert [shard[0].name for shard in shards] == \
               [wp.name for wp in WORKLOADS]
        assert all(shard[1] == LABELS for shard in shards)

    def test_partition_is_reproducible(self):
        assert (shard_overhead_matrix(WORKLOADS, LABELS)
                == shard_overhead_matrix(WORKLOADS, LABELS))


class TestShardBatch:
    def test_one_vm_execution_per_distinct_variant(self):
        batch = ShardBatch(WORKLOADS[0], None, VariantCache())
        rows = batch.rows(LABELS)
        assert len(rows) == len(LABELS)
        # one VM execution per distinct variant: baseline + each label
        assert batch.vm.executions == len(LABELS) + 1
        assert batch.vm.memo_hits == 0
        # re-measuring a label through the same batch reuses the execution
        batch.execute(LABELS[0])
        assert batch.vm.executions == len(LABELS) + 1
        assert batch.vm.memo_hits == 1

    def test_vmbatch_never_serves_stale_results_for_recycled_ids(self):
        """The memo must hold its programs strongly: after a caller drops a
        measured program, CPython may hand its id() to the next build — a
        bare-id memo would then return the dead program's result."""
        from repro.vm.batch import VMBatch
        batch = VMBatch()
        cycles = set()
        for _ in range(5):
            program = WORKLOADS[0].build()
            cycles.add(batch.run(program).cycles)
            del program  # the old id would be free for recycling
        assert batch.executions == 5 and batch.memo_hits == 0
        assert len(cycles) == 1  # deterministic builds, fresh runs each time

    def test_run_batch_deduplicates_repeated_programs(self):
        from repro.vm.batch import run_batch
        from repro.vm.machine import run_program
        program = WORKLOADS[0].build()
        results = run_batch([program, program])
        assert results[0] is results[1]
        reference = run_program(WORKLOADS[0].build())
        assert results[0].observable() == reference.observable()
        assert results[0].cycles == reference.cycles

    def test_rows_match_serial_driver(self):
        serial = measure_overhead(WORKLOADS[:1], labels=LABELS)
        batch = ShardBatch(WORKLOADS[0], None, VariantCache())
        assert batch.rows(LABELS) == serial.rows


class TestShardedBitIdentity:
    def test_measure_overhead_jobs2_equals_serial(self):
        serial = measure_overhead(WORKLOADS, labels=LABELS)
        parallel = measure_overhead(WORKLOADS, labels=LABELS, jobs=2)
        assert serial.rows == parallel.rows
        for label in LABELS:
            assert serial.geomean(label) == parallel.geomean(label)

    def test_measure_overhead_sharded_direct(self):
        serial = measure_overhead(WORKLOADS, labels=LABELS)
        sharded = measure_overhead_sharded(WORKLOADS, LABELS, jobs=2)
        assert _rows(serial) == _rows(sharded)

    def test_figure6_jobs2_equals_serial(self):
        serial = figure6(limit=2)
        parallel = figure6(limit=2, jobs=2)
        assert serial.rows == parallel.rows
        assert serial.labels() == parallel.labels()
        assert serial.programs() == parallel.programs()

    def test_figure7_jobs2_equals_serial(self):
        serial = figure7(limit=1)
        parallel = figure7(limit=1, jobs=2)
        assert serial.rows == parallel.rows

    def test_overhead_respects_repro_jobs_env(self, monkeypatch):
        serial = measure_overhead(WORKLOADS[:1], labels=LABELS)
        monkeypatch.setenv("REPRO_JOBS", "2")
        parallel = measure_overhead(WORKLOADS[:1], labels=LABELS)
        assert serial.rows == parallel.rows

    def test_ambient_repro_jobs_never_overrides_explicit_cache(self,
                                                               monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        cache = VariantCache()
        measure_overhead(WORKLOADS[:1], labels=LABELS, cache=cache)
        assert cache.misses > 0           # the explicit cache was used
        hits_before = cache.hits
        measure_overhead(WORKLOADS[:1], labels=LABELS, cache=cache)
        assert cache.hits > hits_before   # ...and hit on the rerun


class TestSharedStoreReuse:
    def test_workers_attach_to_warm_tree_and_rebuild_nothing(self, tmp_store):
        """After a cold serial populate, a jobs=2 run through the shared
        store must add zero objects to the tree and reproduce the rows."""
        cold = VariantCache(store=ArtifactStore.attach(tmp_store))
        reference = measure_overhead(WORKLOADS, labels=LABELS, cache=cold)
        objects_before = cold.store.entry_count(KIND_VARIANT)
        assert objects_before == len(WORKLOADS) * (len(LABELS) + 1)

        parallel = measure_overhead(WORKLOADS, labels=LABELS, jobs=2)
        assert _rows(parallel) == _rows(reference)
        after = ArtifactStore.attach(tmp_store)
        assert after.entry_count(KIND_VARIANT) == objects_before  # no rebuilds

    def test_cold_parallel_run_populates_the_tree(self, tmp_store):
        serial = measure_overhead(WORKLOADS[:1], labels=LABELS)
        parallel = measure_overhead(WORKLOADS[:1], labels=LABELS, jobs=2)
        assert _rows(parallel) == _rows(serial)
        store = ArtifactStore.attach(tmp_store)
        assert store.entry_count(KIND_VARIANT) == len(LABELS) + 1

    def test_precision_workers_share_the_overhead_tree(self, tmp_store):
        """Cross-experiment reuse through the store: figure-8-style workers
        must fetch the variants the figure-6/7 run persisted."""
        from repro.evaluation import measure_precision
        cold = VariantCache(store=ArtifactStore.attach(tmp_store))
        measure_overhead(WORKLOADS[:1], labels=LABELS, cache=cold)
        objects_before = cold.store.entry_count(KIND_VARIANT)

        serial = measure_precision(WORKLOADS[:1], labels=LABELS)
        parallel = measure_precision(WORKLOADS[:1], labels=LABELS, jobs=2)
        assert [(r.program, r.tool, r.label, r.precision) for r in serial.rows] \
            == [(r.program, r.tool, r.label, r.precision) for r in parallel.rows]
        after = ArtifactStore.attach(tmp_store)
        assert after.entry_count(KIND_VARIANT) == objects_before
