"""Telemetry subsystem: spans, metrics, cross-process collection, export.

Covers the four layers of :mod:`repro.obs` plus their integration with the
pipeline: span-tree well-formedness and attribute round-trips, the no-op
disabled mode (and its ≤2% overhead budget, checked analytically), the
façades the legacy counter surfaces became, deterministic cross-process
merging, and end-to-end runs — a traced fig8 matrix must stay bit-identical
to the untraced serial reference while producing a valid, well-attributed
Chrome trace, and a chaos run must surface its retries and injected faults
in the merged telemetry.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

from repro.faults import FaultRule
from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.obs.collect import (finalize_run, flush, merge_records, open_run,
                               read_shards)
from repro.obs.export import chrome_trace, validate_chrome_trace
from repro.obs.metrics import Histogram, MetricsRegistry, merge_snapshots

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TRACE_REPORT = os.path.join(REPO_ROOT, "scripts", "trace_report.py")


@pytest.fixture
def traced_mode():
    """Tracing forced on for the test, buffer clean on both sides."""
    tracing.drain()
    tracing.set_enabled(True)
    yield
    tracing.drain()
    tracing.refresh()          # back to whatever the environment says


def run_trace_report(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run([sys.executable, TRACE_REPORT, *args],
                          capture_output=True, text=True, env=env)


# -- metrics registry -----------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.counter("a", 2)
        reg.gauge("g", 7.5)
        for value in (0.001, 0.002, 0.4):
            reg.observe("h", value)
        snap = reg.snapshot()
        assert snap["counters"]["a"] == 3
        assert snap["gauges"]["g"] == 7.5
        assert snap["histograms"]["h"]["count"] == 3
        assert snap["histograms"]["h"]["min"] == 0.001
        assert snap["histograms"]["h"]["max"] == 0.4

    def test_histogram_quantiles(self):
        hist = Histogram()
        for _ in range(99):
            hist.observe(0.001)
        hist.observe(10.0)
        assert hist.quantile(0.5) == 0.001
        assert hist.quantile(0.99) == 0.001
        assert hist.quantile(1.0) == 10.0

    def test_child_propagates_up_but_resets_locally(self):
        parent = MetricsRegistry()
        child = MetricsRegistry(parent=parent)
        child.counter("x", 5)
        assert parent.get("x") == 5
        child.reset()
        assert child.get("x") == 0
        assert parent.get("x") == 5       # global totals survive

    def test_prefix_reset(self):
        reg = MetricsRegistry()
        reg.counter("store.hits", 3)
        reg.counter("vm.runs", 2)
        reg.reset("store")
        assert reg.get("store.hits") == 0
        assert reg.get("vm.runs") == 2

    def test_merge_snapshots(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("n", 2)
        b.counter("n", 3)
        a.observe("h", 0.001)
        b.observe("h", 5.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["n"] == 5
        assert merged["histograms"]["h"]["count"] == 2
        assert merged["histograms"]["h"]["min"] == 0.001
        assert merged["histograms"]["h"]["max"] == 5.0


# -- span tracing ---------------------------------------------------------------------


class TestTracing:
    def test_span_tree_wellformed(self, traced_mode):
        with tracing.span("outer", cat="measure", run=1):
            with tracing.span("inner", workload="w"):
                pass
            tracing.event("tick", n=3)
        records = tracing.drain()
        by_name = {r["name"]: r for r in records}
        inner, outer = by_name["inner"], by_name["outer"]
        tick = by_name["tick"]
        assert inner["parent"] == outer["id"]
        assert inner["cat"] == "measure"          # inherited from parent
        assert tick["cat"] == "measure"
        assert outer["parent"] is None
        assert outer["args"] == {"run": 1}
        assert inner["args"] == {"workload": "w"}
        # spans close child-first, and every record is JSON-serialisable
        assert records.index(inner) < records.index(outer)
        for record in records:
            assert json.loads(json.dumps(record)) == record
        assert inner["ts"] >= outer["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1

    def test_error_attribute(self, traced_mode):
        with pytest.raises(ValueError):
            with tracing.span("boom"):
                raise ValueError("x")
        (record,) = tracing.drain()
        assert record["args"]["error"] == "ValueError"

    def test_traced_decorator(self, traced_mode):
        @tracing.traced(cat="verify")
        def checked():
            return 42

        assert checked() == 42
        (record,) = tracing.drain()
        assert record["cat"] == "verify"
        assert "checked" in record["name"]

    def test_disabled_is_noop(self):
        tracing.set_enabled(False)
        try:
            assert tracing.span("x") is tracing.NOOP_SPAN
            assert tracing.span("y", cat="diff") is tracing.NOOP_SPAN
            with tracing.span("z", a=1) as sp:
                sp.set(b=2)
            tracing.event("nothing")
            assert tracing.pending() == 0
        finally:
            tracing.refresh()

    def test_disabled_overhead_within_budget(self, demo_program):
        """Analytic ≤2% bound: instrumentation cost per VM run vs run time.

        A/B wall-clock comparisons of full runs are noise-bound in CI, so
        bound the overhead analytically: measure the *per-call* cost of a
        disabled ``span()`` and a registry counter op, multiply by a
        generous estimate of calls per VM execution, and require the total
        to stay under 2% of one measured execution.
        """
        from repro.vm.machine import run_program

        tracing.set_enabled(False)
        try:
            run_program(demo_program)             # warm caches
            run_seconds = min(
                self._timed(run_program, demo_program) for _ in range(5))

            n = 50000
            started = time.perf_counter()
            for _ in range(n):
                tracing.span("x", cat="measure", a=1)
            span_cost = (time.perf_counter() - started) / n
            reg = MetricsRegistry()
            started = time.perf_counter()
            for _ in range(n):
                reg.counter("vm.steps", 17)
            counter_cost = (time.perf_counter() - started) / n
        finally:
            tracing.refresh()

        # one VM execution performs ~8 instrumentation ops (the four
        # registry ops of machine._metrics_run plus the span checks around
        # measurement, build and store I/O); 10 leaves headroom
        per_run = 10 * (span_cost + counter_cost)
        assert per_run <= 0.02 * run_seconds, (
            f"instrumentation {per_run * 1e6:.1f}us/run vs "
            f"{run_seconds * 1e6:.1f}us run: over the 2% budget")

    @staticmethod
    def _timed(fn, *args):
        started = time.perf_counter()
        fn(*args)
        return time.perf_counter() - started


# -- collection and export ------------------------------------------------------------


class TestCollect:
    def test_merge_records_is_deterministic(self):
        records = [
            {"ts": 5, "pid": 2, "seq": 1, "name": "b"},
            {"ts": 5, "pid": 1, "seq": 9, "name": "a"},
            {"ts": 1, "pid": 3, "seq": 2, "name": "c"},
            {"ts": 5, "pid": 1, "seq": 2, "name": "d"},
        ]
        merged = merge_records(list(records))
        assert [r["name"] for r in merged] == ["c", "d", "a", "b"]
        assert merge_records(list(reversed(records))) == merged

    def test_flush_and_finalize(self, tmp_path, traced_mode):
        run_dir = str(tmp_path / "run")
        os.makedirs(run_dir)
        obs_metrics.counter("test.flushed", 3)
        with tracing.span("work", cat="build"):
            tracing.event("marker", cause="test")
        path = flush(run_dir)
        assert path is not None and path.endswith("%d.jsonl" % os.getpid())
        outputs = finalize_run(run_dir)
        with open(outputs["trace"], encoding="utf-8") as fh:
            trace = json.load(fh)
        assert validate_chrome_trace(trace) == []
        names = {ev["name"] for ev in trace["traceEvents"]}
        assert {"work", "marker"} <= names
        with open(outputs["metrics"], encoding="utf-8") as fh:
            metrics = json.load(fh)
        assert metrics["merged"]["counters"]["test.flushed"] >= 3

    def test_open_run_disabled_is_noop(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        monkeypatch.setenv("REPRO_METRICS", "off")
        with open_run(str(tmp_path), "runid") as run:
            assert run.directory is None
        assert not os.path.exists(str(tmp_path / "telemetry"))

    def test_open_run_nested_defers_to_outer(self, tmp_path, monkeypatch,
                                             traced_mode):
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.delenv("REPRO_TELEMETRY_DIR", raising=False)
        with open_run(str(tmp_path), "outer") as outer_run:
            outer_dir = outer_run.directory
            assert os.environ["REPRO_TELEMETRY_DIR"] == outer_dir
            with open_run(str(tmp_path), "inner") as inner_run:
                assert inner_run.directory == outer_dir
            # inner exit must not tear down the outer run
            assert os.environ["REPRO_TELEMETRY_DIR"] == outer_dir
        assert "REPRO_TELEMETRY_DIR" not in os.environ
        assert os.path.exists(os.path.join(outer_dir, "trace.json"))

    def test_chrome_trace_shapes(self):
        records = [
            {"type": "span", "name": "s", "cat": "build", "ts": 10,
             "dur": 5, "pid": 1, "tid": 2, "seq": 1, "args": {"k": "v"}},
            {"type": "event", "name": "e", "cat": "task", "ts": 12,
             "pid": 1, "tid": 2, "seq": 2, "args": {}},
        ]
        payload = chrome_trace(records)
        assert validate_chrome_trace(payload) == []
        phases = {ev["ph"] for ev in payload["traceEvents"]}
        assert phases == {"X", "i", "M"}


# -- façades over the registry --------------------------------------------------------


class TestFacades:
    def test_store_counters_and_quarantine_event(self, tmp_path, traced_mode,
                                                 monkeypatch):
        from repro.store.artifact_store import ArtifactStore

        store = ArtifactStore.attach(str(tmp_path / "store"))
        store.put("variant", ("k",), {"payload": 1})
        assert store.puts == 1
        store.get("variant", ("k",))
        assert store.memory_hits == 1
        fresh = ArtifactStore.attach(str(tmp_path / "store"))
        fresh.get("variant", ("k",))
        assert fresh.disk_hits == 1
        fresh.get_or_build("variant", ("missing",), lambda: {"built": 1})
        assert fresh.misses == 1
        fresh.reset_counters()
        assert fresh.disk_hits == 0
        # corruption must surface as both a counter and a trace event
        tracing.drain()
        damaged = ArtifactStore.attach(str(tmp_path / "store"))
        from repro.store.artifact_store import store_digest
        digest = store_digest("variant", ("k",))
        path = damaged.object_path("variant", digest)
        with open(path, "wb") as fh:
            fh.write(b"garbage")
        assert damaged.get("variant", ("k",), "gone") == "gone"
        assert damaged.quarantined == 1
        assert sum(damaged.corrupt_reads.values()) == 1
        events = [r for r in tracing.drain() if r.get("type") == "event"]
        assert any(e["name"] == "store.quarantine" for e in events)

    def test_vmbatch_counters(self, demo_program):
        from repro.vm.batch import VMBatch

        batch = VMBatch()
        batch.run(demo_program)
        batch.run(demo_program)
        assert batch.executions == 1
        assert batch.interpreters == 1
        assert batch.memo_hits == 1

    def test_worker_cache_events(self, tmp_path, monkeypatch):
        from repro.core.variant_cache import cache_file_path
        from repro.evaluation.executor import (reset_worker_cache,
                                               worker_cache,
                                               worker_cache_events)

        legacy = str(tmp_path / "legacy")
        os.makedirs(legacy)
        with open(cache_file_path(legacy), "wb") as fh:
            fh.write(b"not a pickle")
        monkeypatch.setenv("REPRO_VARIANT_CACHE_DIR", legacy)
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        reset_worker_cache()
        try:
            worker_cache()
            assert worker_cache_events()["preload_failures"] == 1
        finally:
            reset_worker_cache()


# -- end-to-end: traced runs stay bit-identical ---------------------------------------


def _find_seed(kind, probability, tokens, retries):
    """A seed where ≥1 token fires at attempt 0 yet every token succeeds.

    ``FaultRule.fires`` is a pure hash of (kind, seed, token, attempt), so
    the search is exact: the chosen seed guarantees the retry machinery is
    exercised and the run still completes within the retry budget.
    """
    best = None
    for seed in range(500):
        rule = FaultRule(kind=kind, probability=probability, seed=seed)
        if not any(rule.fires(token, 0) for token in tokens):
            continue
        if not all(any(not rule.fires(token, attempt)
                       for attempt in range(retries + 1))
                   for token in tokens):
            continue
        total = sum(rule.fires(token, attempt) for token in tokens
                    for attempt in range(retries + 1))
        if best is None or total < best[0]:
            best = (total, seed)       # fewest firings = fastest test
    if best is None:
        raise AssertionError("no suitable fault seed in range")
    return best[1]


class TestEndToEnd:
    def test_traced_fig8_bit_identical_and_covered(self, tmp_store,
                                                   monkeypatch):
        from repro.diffing import all_differs
        from repro.evaluation import measure_precision
        from repro.evaluation.diff_sharding import measure_precision_sharded
        from repro.workloads.suites import spec2006_programs

        workloads = spec2006_programs()[:1]
        labels = ("fission",)
        differs = all_differs()[:1]

        def rows(report):
            return [(r.program, r.suite, r.tool, r.label, r.precision,
                     r.similarity_score) for r in report.rows]

        reference = rows(measure_precision(workloads, labels, differs))

        monkeypatch.setenv("REPRO_TRACE", "1")
        tracing.refresh()
        try:
            traced = rows(measure_precision_sharded(
                workloads, labels, differs, jobs=2))
        finally:
            monkeypatch.delenv("REPRO_TRACE")
            tracing.refresh()
            tracing.drain()

        assert traced == reference

        telemetry = os.path.join(tmp_store, "telemetry")
        (run_name,) = os.listdir(telemetry)
        run_dir = os.path.join(telemetry, run_name)
        with open(os.path.join(run_dir, "trace.json"),
                  encoding="utf-8") as fh:
            assert validate_chrome_trace(json.load(fh)) == []

        # two merges of the same shard files agree exactly
        records, _ = read_shards(run_dir)
        assert merge_records(list(records)) == \
            merge_records(list(reversed(records)))

        result = run_trace_report("--json", run_dir)
        assert result.returncode == 0, result.stderr
        report = json.loads(result.stdout)
        assert report["coverage"] >= 0.95
        assert report["counters"].get("executor.tasks_completed", 0) >= 1
        phases = report["phases"]
        assert phases["diff"] > 0 or phases["build"] > 0
        validated = run_trace_report("--validate", run_dir)
        assert validated.returncode == 0, validated.stderr

    def test_chaos_run_events_reach_merged_trace(self, tmp_store,
                                                 monkeypatch):
        from repro.evaluation.executor import reset_worker_cache, run_tasks
        from repro.faults import reset_injector

        tokens = [f"task:{i}" for i in range(6)]
        seed = _find_seed("task_error", 0.4, tokens, retries=5)
        monkeypatch.setenv("REPRO_FAULTS",
                           f"task_error:p=0.4,seed={seed}")
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_TASK_BACKOFF", "0.01")
        tracing.refresh()
        reset_injector()
        reset_worker_cache()
        try:
            with open_run(tmp_store, "chaosrun"):
                results = run_tasks(_double, list(range(6)), jobs=2,
                                    retries=5)
        finally:
            monkeypatch.delenv("REPRO_FAULTS")
            monkeypatch.delenv("REPRO_TRACE")
            tracing.refresh()
            tracing.drain()
            reset_injector()
            reset_worker_cache()

        assert results == [i * 2 for i in range(6)]
        run_dir = os.path.join(tmp_store, "telemetry", "chaosrun")
        records, snapshots = read_shards(run_dir)
        events = {r["name"] for r in records if r.get("type") == "event"}
        assert "executor.retry" in events
        with open(os.path.join(run_dir, "metrics.json"),
                  encoding="utf-8") as fh:
            counters = json.load(fh)["merged"]["counters"]
        assert counters.get("executor.retries", 0) >= 1
        assert counters.get("faults.injected.task_error", 0) >= 1

    def test_timeout_event_recorded(self, tmp_store, monkeypatch):
        from repro.evaluation.executor import reset_worker_cache, run_tasks
        from repro.faults import reset_injector

        seed = _find_seed("task_hang", 0.5, ["task:0", "task:1"],
                          retries=3)
        monkeypatch.setenv(
            "REPRO_FAULTS", f"task_hang:p=0.5,seed={seed},seconds=5")
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_TASK_BACKOFF", "0.01")
        tracing.refresh()
        reset_injector()
        reset_worker_cache()
        try:
            with open_run(tmp_store, "hangrun"):
                results = run_tasks(_double, [0, 1], jobs=2, retries=3,
                                    timeout=0.5)
        finally:
            monkeypatch.delenv("REPRO_FAULTS")
            monkeypatch.delenv("REPRO_TRACE")
            tracing.refresh()
            tracing.drain()
            reset_injector()
            reset_worker_cache()

        assert results == [0, 2]
        records, _ = read_shards(
            os.path.join(tmp_store, "telemetry", "hangrun"))
        events = {r["name"] for r in records if r.get("type") == "event"}
        assert "executor.timeout" in events
        assert "executor.pool_respawn" in events


def _double(x: int) -> int:
    return x * 2
