"""Multi-module linking edge cases: symbol resolution, renames, globals."""

import pytest

from repro.ir import (FunctionType, GlobalVariable, IRBuilder, Linkage,
                      Module, Program, assert_valid, create_function, I64)
from repro.vm import run_program


def _const_function(module, name, value, linkage=Linkage.INTERNAL):
    f = create_function(module, name, I64, [], linkage=linkage)
    IRBuilder(f.entry_block).ret(value)
    return f


def _global_reader(module, fname, gvar, linkage=Linkage.EXPORTED):
    f = create_function(module, fname, I64, [], linkage=linkage)
    b = IRBuilder(f.entry_block)
    b.ret(b.load(gvar))
    return f


class TestGlobalLinking:
    def test_identical_globals_collapse(self):
        first = Module("first")
        g1 = first.add_global(GlobalVariable("shared", I64, initializer=7))
        _global_reader(first, "read_first", g1)
        second = Module("second")
        g2 = second.add_global(GlobalVariable("shared", I64, initializer=7))
        _global_reader(second, "read_second", g2)
        main_mod = Module("mainmod")
        _const_function(main_mod, "main", 0)

        linked = Program("p", [first, second, main_mod]).link()
        merged = linked.modules[0]
        assert list(merged.globals) == ["shared"]
        assert_valid(linked)

    def test_clashing_globals_renamed_not_collapsed(self):
        """Same-named globals with different initializers must not alias."""
        first = Module("first")
        g1 = first.add_global(GlobalVariable("cfg", I64, initializer=10))
        _global_reader(first, "read_first", g1)
        second = Module("second")
        g2 = second.add_global(GlobalVariable("cfg", I64, initializer=99))
        _global_reader(second, "read_second", g2)
        main_mod = Module("mainmod")
        main = create_function(main_mod, "main", I64, [])
        b = IRBuilder(main.entry_block)
        b.ret(b.sub(b.call(second.get_function("read_second"), []),
                    b.call(first.get_function("read_first"), [])))

        linked = Program("p", [first, second, main_mod]).link()
        merged = linked.modules[0]
        assert len(merged.globals) == 2
        assert "cfg" in merged.globals
        assert "cfg.second" in merged.globals
        assert merged.globals["cfg"].initializer == 10
        assert merged.globals["cfg.second"].initializer == 99
        assert_valid(linked)
        # each reader still sees its own module's value: 99 - 10
        assert run_program(linked).exit_value == 89

    def test_differing_constancy_is_a_clash(self):
        first = Module("first")
        first.add_global(GlobalVariable("c", I64, initializer=1, constant=True))
        _const_function(first, "f1", 0, linkage=Linkage.EXPORTED)
        second = Module("second")
        second.add_global(GlobalVariable("c", I64, initializer=1))
        _const_function(second, "main", 0)
        linked = Program("p", [first, second]).link()
        assert len(linked.modules[0].globals) == 2


class TestFunctionSymbolResolution:
    def test_duplicate_external_definitions_raise(self):
        first = Module("first")
        _const_function(first, "api", 1, linkage=Linkage.EXPORTED)
        second = Module("second")
        _const_function(second, "api", 2, linkage=Linkage.EXPORTED)
        with pytest.raises(ValueError, match="duplicate symbol 'api'"):
            Program("p", [first, second]).link()

    def test_internal_clash_renamed_with_module_suffix(self):
        first = Module("first")
        _const_function(first, "util", 1)
        second = Module("second")
        _const_function(second, "util", 2)
        main_mod = Module("mainmod")
        _const_function(main_mod, "main", 0)
        linked = Program("p", [first, second, main_mod]).link()
        names = {f.name for f in linked.defined_functions()}
        assert "util" in names
        assert "util.second" in names

    def test_renamed_internal_call_sites_follow_the_rename(self):
        """Callers of a renamed internal must reach their own module's copy."""
        first = Module("first")
        u1 = _const_function(first, "util", 11)
        caller1 = create_function(first, "caller_first", I64, [],
                                  linkage=Linkage.EXPORTED)
        b1 = IRBuilder(caller1.entry_block)
        b1.ret(b1.call(u1, []))

        second = Module("second")
        u2 = _const_function(second, "util", 22)
        caller2 = create_function(second, "caller_second", I64, [],
                                  linkage=Linkage.EXPORTED)
        b2 = IRBuilder(caller2.entry_block)
        b2.ret(b2.call(u2, []))

        main_mod = Module("mainmod")
        main = create_function(main_mod, "main", I64, [])
        bm = IRBuilder(main.entry_block)
        bm.ret(bm.add(bm.call(caller1, []), bm.call(caller2, [])))

        linked = Program("p", [first, second, main_mod]).link()
        assert_valid(linked)
        assert run_program(linked).exit_value == 33
        merged = linked.modules[0]
        renamed = merged.get_function("util.second")
        assert renamed is not None
        assert renamed.attributes["origin_module"] == "second"

    def test_exported_definition_keeps_name_over_internal(self):
        first = Module("first")
        _const_function(first, "work", 1)  # internal, encountered first
        second = Module("second")
        _const_function(second, "work", 2, linkage=Linkage.EXPORTED)
        main_mod = Module("mainmod")
        _const_function(main_mod, "main", 0)
        linked = Program("p", [first, second, main_mod]).link()
        merged = linked.modules[0]
        assert merged.get_function("work").linkage == Linkage.EXPORTED
        assert merged.get_function("work.first").linkage == Linkage.INTERNAL

    def test_declaration_binds_to_later_definition(self):
        """A module calling through a declaration links to the real definition."""
        app = Module("app")
        helper_decl = app.declare_function("helper", FunctionType(I64, [I64]))
        main = create_function(app, "main", I64, [])
        b = IRBuilder(main.entry_block)
        b.ret(b.call(helper_decl, [40]))

        lib = Module("lib")
        helper = create_function(lib, "helper", I64, [I64],
                                 linkage=Linkage.EXPORTED)
        hb = IRBuilder(helper.entry_block)
        hb.ret(hb.add(helper.args[0], 2))

        linked = Program("p", [app, lib]).link()  # declaration comes FIRST
        merged = linked.modules[0]
        assert not merged.get_function("helper").is_declaration
        assert merged.get_function("helper").attributes["origin_module"] == "lib"
        assert_valid(linked)
        assert run_program(linked).exit_value == 42

    def test_pure_declarations_collapse_to_one(self):
        first = Module("first")
        first.declare_function("putint", FunctionType(I64, [I64]))
        second = Module("second")
        second.declare_function("putint", FunctionType(I64, [I64]))
        _const_function(second, "main", 0)
        linked = Program("p", [first, second]).link()
        merged = linked.modules[0]
        assert merged.get_function("putint").is_declaration
        assert sum(1 for f in merged.functions.values()
                   if f.name.startswith("putint")) == 1

    def test_link_does_not_mutate_the_source_program(self):
        first = Module("first")
        _const_function(first, "util", 1)
        second = Module("second")
        _const_function(second, "util", 2)
        program = Program("p", [first, second])
        before = [(m.name, sorted(m.functions)) for m in program.modules]
        program.link()
        after = [(m.name, sorted(m.functions)) for m in program.modules]
        assert before == after
        assert first.get_function("util").module is first


class TestModuleAPIGuards:
    def test_declare_function_rejects_type_mismatch(self):
        module = Module("m")
        module.declare_function("ext", FunctionType(I64, [I64]))
        with pytest.raises(TypeError, match="re-declared"):
            module.declare_function("ext", FunctionType(I64, [I64, I64]))

    def test_declare_function_idempotent_on_matching_type(self):
        module = Module("m")
        first = module.declare_function("ext", FunctionType(I64, [I64]))
        second = module.declare_function("ext", FunctionType(I64, [I64]))
        assert first is second

    def test_remove_function_missing_raises_clear_keyerror(self):
        module = Module("m")
        with pytest.raises(KeyError, match="no function named 'nope'"):
            module.remove_function("nope")

    def test_remove_function_detaches(self):
        module = Module("m")
        f = _const_function(module, "f", 1)
        module.remove_function("f")
        assert f.module is None
        assert module.get_function("f") is None


class TestOnePassCloneAndLink:
    def test_multi_module_clone_never_aliases_the_source(self):
        from repro.workloads.suites import spec2006_programs
        program = spec2006_programs()[0].build()
        assert len(program.modules) > 1
        clone = program.clone()
        source_objects = {id(f) for m in program.modules
                          for f in m.functions.values()}
        source_objects |= {id(g) for m in program.modules
                           for g in m.globals.values()}
        for module in clone.modules:
            for f in module.functions.values():
                for inst in f.instructions():
                    for op in inst.operands:
                        assert id(op) not in source_objects, (
                            f"clone of @{f.name} still references a source "
                            f"program object: {op!r}")

    def test_multi_module_clone_preserves_behaviour(self):
        from repro.workloads.suites import spec2006_programs
        program = spec2006_programs()[1].build()
        original = run_program(program).observable()
        assert run_program(program.clone()).observable() == original

    def test_link_preserves_behaviour_on_workloads(self):
        from repro.workloads.suites import coreutils_programs
        for workload in coreutils_programs()[:2]:
            program = workload.build()
            original = run_program(program).observable()
            linked = program.link()
            assert len(linked.modules) == 1
            assert_valid(linked)
            assert run_program(linked).observable() == original
