"""Tests for the deep static-analysis subsystem (repro.analysis.static).

Covers: tier resolution, a failing-input test for every diagnostic code,
verify-result caching through the AnalysisManager, the PassManager /
obfuscator / post-link wiring, reg2mem demotion, the generated-trace AST
lint hook, baseline suppression, and the corpus property suite (every
scheme's output verifies clean at the ``full`` tier).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.manager import AnalysisManager
from repro.analysis.static import (ALL_CODES, ast_lint, costcheck, dominance,
                                   lints, structural, typecheck, verify,
                                   verify_function)
from repro.analysis.static.diagnostics import (apply_baseline,
                                               diagnostics_to_json,
                                               load_baseline, write_baseline)
from repro.analysis.static.verify import resolve_tier
from repro.ir import (FunctionType, IRBuilder, Module, Program,
                      VerificationError, assert_valid, create_function, F64,
                      I1, I8, I64)
from repro.ir.instructions import (BinaryOp, Call, Cast, Compare, CondBranch,
                                   GetElementPtr, Ret, Select, Store, Switch)
from repro.ir.values import Constant, GlobalVariable, UndefValue
from repro.opt.pass_manager import Pass, PassManager
from repro.opt.reg2mem import demote_undominated
from repro.vm.machine import Interpreter
from repro.workloads import load_suite, suite_names


def codes_of(diagnostics):
    return {d.code for d in diagnostics}


def valid_function(module=None, name="f", return_type=I64):
    module = module if module is not None else Module("m")
    f = create_function(module, name, return_type, [I64])
    b = IRBuilder(f.entry_block)
    return module, f, b


# -- tier resolution ---------------------------------------------------------------


class TestTierResolution:
    def test_default_is_structural(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_IR", raising=False)
        assert resolve_tier(None) == "structural"
        assert resolve_tier(True) == "structural"

    def test_env_var_selects_tier(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_IR", "full")
        assert resolve_tier(None) == "full"
        assert resolve_tier(True) == "full"
        # an explicit tier wins over the environment
        assert resolve_tier("typed") == "typed"

    def test_unknown_tier_raises(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_tier("everything")
        monkeypatch.setenv("REPRO_VERIFY_IR", "bogus")
        with pytest.raises(ValueError):
            resolve_tier(None)

    def test_every_code_is_unique(self):
        assert len(ALL_CODES) == len(set(ALL_CODES))


# -- structural codes --------------------------------------------------------------


class TestStructuralCodes:
    def test_empty_block(self):
        _, f, b = valid_function()
        b.ret(0)
        f.add_block("empty")
        assert "empty-block" in codes_of(structural.check_function(f))

    def test_missing_terminator(self):
        _, f, b = valid_function()
        b.add(1, 2)
        assert "missing-terminator" in codes_of(structural.check_function(f))

    def test_multiple_terminators(self):
        _, f, b = valid_function()
        b.ret(0)
        b.block.append(Ret(Constant(I64, 1)))
        assert "multiple-terminators" in codes_of(structural.check_function(f))

    def test_terminator_not_last(self):
        _, f, b = valid_function()
        b.ret(0)
        b.block.append(BinaryOp("add", Constant(I64, 1), Constant(I64, 2)))
        diagnostics = structural.check_function(f)
        assert "terminator-not-last" in codes_of(diagnostics)

    def test_foreign_branch_target(self):
        module, f, b = valid_function()
        _, other, ob = valid_function(module, name="g")
        ob.ret(0)
        b.block.append(__import__("repro.ir.instructions", fromlist=["Branch"])
                       .Branch(other.entry_block))
        assert "foreign-branch-target" in codes_of(
            structural.check_function(f))

    def test_null_operand(self):
        _, f, b = valid_function()
        inst = b.add(1, 2)
        inst.operands[1] = None
        b.ret(inst)
        assert "null-operand" in codes_of(structural.check_function(f))

    def test_foreign_argument(self):
        module, f, b = valid_function()
        _, other, ob = valid_function(module, name="g")
        ob.ret(0)
        b.ret(other.args[0])
        assert "foreign-argument" in codes_of(structural.check_function(f))

    def test_foreign_instruction(self):
        module, f, b = valid_function()
        _, other, ob = valid_function(module, name="g")
        foreign = ob.add(1, 2)
        ob.ret(foreign)
        b.ret(b.add(foreign, 1))
        assert "foreign-instruction" in codes_of(structural.check_function(f))

    def test_call_arity(self):
        module, f, b = valid_function()
        callee = module.declare_function("callee", FunctionType(I64, [I64, I64]))
        b.ret(b.call(callee, [Constant(I64, 1)]))
        assert "call-arity" in codes_of(structural.check_function(f))

    def test_ret_mismatch(self):
        _, f, b = valid_function()
        b.block.append(Ret(None))
        assert "ret-mismatch" in codes_of(structural.check_function(f))


# -- type-check codes --------------------------------------------------------------


class TestTypecheckCodes:
    def check(self, f):
        assert not [d for d in structural.check_function(f) if d.is_error], \
            "typecheck fixtures must be structurally clean"
        return codes_of(typecheck.check_function(f))

    def test_binop_type(self):
        _, f, b = valid_function()
        bad = BinaryOp("add", Constant(I64, 1), Constant(F64, 2.0))
        b.block.append(bad)
        b.ret(bad)
        assert "binop-type" in self.check(f)

    def test_compare_type(self):
        _, f, b = valid_function()
        bad = Compare("slt", Constant(I64, 1), Constant(F64, 2.0))
        b.block.append(bad)
        b.ret(b.cast("zext", bad, I64))
        assert "compare-type" in self.check(f)

    def test_cond_type(self):
        _, f, b = valid_function()
        then = f.add_block("then")
        IRBuilder(then).ret(1)
        other = f.add_block("other")
        IRBuilder(other).ret(2)
        b.block.append(CondBranch(Constant(I64, 1), then, other))
        assert "cond-type" in self.check(f)

    def test_select_type(self):
        _, f, b = valid_function()
        sel = Select(Constant(I1, 1), Constant(I64, 1), Constant(F64, 2.0))
        b.block.append(sel)
        b.ret(sel)
        assert "select-type" in self.check(f)

    def test_load_type(self):
        _, f, b = valid_function()
        slot = b.alloca(I64, name="slot")
        loaded = b.load(slot, name="v")
        loaded.type = F64
        b.ret(b.cast("fptosi", loaded, I64))
        assert "load-type" in self.check(f)

    def test_store_type(self):
        _, f, b = valid_function()
        slot = b.alloca(I64, name="slot")
        b.block.append(Store(Constant(F64, 1.0), slot))
        b.ret(0)
        assert "store-type" in self.check(f)

    def test_gep_type(self):
        _, f, b = valid_function()
        slot = b.alloca(I64, count=4, name="slot")
        gep = GetElementPtr(slot, Constant(F64, 1.0))
        b.block.append(gep)
        b.ret(b.load(gep))
        assert "gep-type" in self.check(f)

    def test_cast_type(self):
        _, f, b = valid_function()
        bad = Cast("trunc", Constant(I8, 1), I64)
        b.block.append(bad)
        b.ret(bad)
        assert "cast-type" in self.check(f)

    def test_callee_type(self):
        module, f, b = valid_function()
        callee = module.declare_function("callee", FunctionType(I64, [I64]))
        call = Call(callee, [Constant(I64, 1)])
        call.operands[0] = Constant(I64, 7)
        b.block.append(call)
        b.ret(call)
        assert "callee-type" in self.check(f)

    def test_call_arg_type(self):
        module, f, b = valid_function()
        callee = module.declare_function("callee", FunctionType(I64, [I64]))
        call = Call(callee, [Constant(F64, 1.0)])
        b.block.append(call)
        b.ret(call)
        assert "call-arg-type" in self.check(f)

    def test_call_result_type(self):
        module, f, b = valid_function()
        callee = module.declare_function("callee", FunctionType(I64, [I64]))
        call = Call(callee, [Constant(I64, 1)])
        call.type = F64
        b.block.append(call)
        b.ret(b.cast("fptosi", call, I64))
        assert "call-result-type" in self.check(f)

    def test_ret_type(self):
        _, f, b = valid_function()
        b.block.append(Ret(Constant(F64, 1.0)))
        assert "ret-type" in self.check(f)

    def test_switch_type(self):
        _, f, b = valid_function()
        done = f.add_block("done")
        IRBuilder(done).ret(0)
        b.block.append(Switch(Constant(F64, 1.0), done))
        assert "switch-type" in self.check(f)

    def test_constant_value(self):
        _, f, b = valid_function()
        bad = Constant(I8, 1)
        bad.value = 4096          # bypasses the constructor's wrap
        inst = BinaryOp("add", bad, Constant(I8, 2))
        b.block.append(inst)
        b.ret(b.cast("sext", inst, I64))
        assert "constant-value" in self.check(f)

    def test_global_init(self):
        module, f, b = valid_function()
        b.ret(0)
        module.add_global(GlobalVariable("g", I64, initializer="nope"))
        diagnostics = typecheck.check_module(module)
        assert "global-init" in codes_of(diagnostics)


# -- dominance codes ---------------------------------------------------------------


class TestDominanceCodes:
    def test_use_before_def(self):
        _, f, b = valid_function()
        late = BinaryOp("add", Constant(I64, 1), Constant(I64, 2), name="late")
        early = BinaryOp("add", late, Constant(I64, 3), name="early")
        b.block.append(early)
        b.block.append(late)
        b.ret(early)
        assert "use-before-def" in codes_of(dominance.check_function(f))

    def test_dominance(self):
        _, f, b = valid_function()
        left = f.add_block("left")
        right = f.add_block("right")
        cond = b.icmp("eq", f.args[0], 0, name="cond")
        b.cond_br(cond, left, right)
        lb = IRBuilder(left)
        value = lb.add(1, 2, name="v")
        lb.ret(value)
        IRBuilder(right).ret(value)   # %v does not dominate right
        assert "dominance" in codes_of(dominance.check_function(f))

    def test_unreachable_def(self):
        _, f, b = valid_function()
        island = f.add_block("island")
        ib = IRBuilder(island)
        value = ib.add(1, 2, name="v")
        ib.ret(value)
        b.ret(value)                  # reachable use of an unreachable def
        assert "unreachable-def" in codes_of(dominance.check_function(f))


# -- dataflow lint codes -----------------------------------------------------------


class TestLintCodes:
    def test_unreachable_block(self):
        _, f, b = valid_function()
        b.ret(0)
        island = f.add_block("island")
        IRBuilder(island).ret(1)
        assert "unreachable-block" in codes_of(lints.check_function(f))

    def test_load_uninit(self):
        _, f, b = valid_function()
        slot = b.alloca(I64, name="slot")
        b.ret(b.load(slot))
        assert "load-uninit" in codes_of(lints.check_function(f))

    def test_dead_store(self):
        _, f, b = valid_function()
        slot = b.alloca(I64, name="slot")
        b.store(7, slot)
        b.ret(0)
        assert "dead-store" in codes_of(lints.check_function(f))

    def test_undef_operand(self):
        _, f, b = valid_function()
        inst = BinaryOp("add", UndefValue(I64), Constant(I64, 1))
        b.block.append(inst)
        b.ret(inst)
        assert "undef-operand" in codes_of(lints.check_function(f))

    def test_lints_are_warnings(self):
        _, f, b = valid_function()
        slot = b.alloca(I64, name="slot")
        b.store(7, slot)
        b.ret(0)
        assert all(not d.is_error for d in lints.check_function(f))
        # so full-tier *error* verification stays clean
        assert not [d for d in verify(f, tier="full") if d.is_error]


# -- cost-model consistency codes --------------------------------------------------


def _loop_program():
    module = Module("loopy")
    f = create_function(module, "main", I64, [])
    entry = f.entry_block
    loop = f.add_block("loop")
    body = f.add_block("body")
    done = f.add_block("done")
    b = IRBuilder(entry)
    i_slot = b.alloca(I64, name="i")
    acc_slot = b.alloca(I64, name="acc")
    b.store(0, i_slot)
    b.store(0, acc_slot)
    b.br(loop)
    b.position_at_end(loop)
    cond = b.icmp("slt", b.load(i_slot), 50, name="cond")
    b.cond_br(cond, body, done)
    b.position_at_end(body)
    b.store(b.add(b.load(acc_slot), b.load(i_slot)), acc_slot)
    b.store(b.add(b.load(i_slot), 1), i_slot)
    b.br(loop)
    b.position_at_end(done)
    b.ret(b.load(acc_slot))
    return Program("loopy", [module])


class TestCostCodes:
    def test_cost_block(self):
        interp = Interpreter(_loop_program(), dispatch="compiled")
        interp.run([])
        assert not costcheck.check_interpreter(interp)
        block, compiled = next(iter(interp._compiled_blocks.items()))
        tampered = (compiled[0], compiled[1], compiled[2],
                    compiled[3] + 5, compiled[4], compiled[5])
        interp._compiled_blocks[block] = tampered
        assert "cost-block" in codes_of(costcheck.check_interpreter(interp))

    def test_cost_trace(self):
        interp = Interpreter(_loop_program(), dispatch="superblock")
        for _ in range(8):
            interp.run([])
        assert interp._traces, "the loop head must have built a trace"
        assert not costcheck.check_interpreter(interp)
        trace = next(iter(interp._traces.values()))
        trace.total_cost += 3
        assert "cost-trace" in codes_of(costcheck.check_interpreter(interp))

    def test_check_program_clean_on_workload(self):
        program = load_suite("embedded")[0].build()
        assert not costcheck.check_program(program)


# -- generated-trace AST lint codes ------------------------------------------------


GOOD_TRACE = """\
def _trace(env):
    try:
        _v = env[1] + env[2]
        env[3] = _v
    except (TypeError, KeyError):
        _f0(env)
    return _t0
"""


class TestTraceCodes:
    def lint(self, source):
        return codes_of(ast_lint.lint_trace_source(source, where="@t"))

    def test_good_trace_is_clean(self):
        assert not ast_lint.lint_trace_source(GOOD_TRACE, where="@t")

    def test_trace_structure(self):
        assert "trace-structure" in self.lint("x = 1")
        assert "trace-structure" in self.lint("def _trace(env, extra):\n"
                                              "    return None")
        assert "trace-structure" in self.lint("def other(env):\n"
                                              "    return None")

    def test_trace_banned_construct(self):
        assert "trace-banned-construct" in self.lint(
            "def _trace(env):\n    while True:\n        pass")
        assert "trace-banned-construct" in self.lint(
            "def _trace(env):\n    import os\n    return None")

    def test_trace_unknown_name(self):
        assert "trace-unknown-name" in self.lint(
            "def _trace(env):\n    return mystery")

    def test_trace_env_misuse(self):
        assert "trace-env-misuse" in self.lint(
            "def _trace(env):\n    env = 1\n    return None")
        assert "trace-env-misuse" in self.lint(
            "def _trace(env):\n    _v = env\n    return None")
        assert "trace-env-misuse" in self.lint(
            "def _trace(env):\n    _v = env['key']\n    return None")

    def test_trace_attr(self):
        assert "trace-attr" in self.lint(
            "def _trace(env):\n    _v = env[1].shady\n    return None")

    def test_trace_call(self):
        assert "trace-call" in self.lint(
            "def _trace(env):\n    _v = eval(_g0)\n    return None")

    def test_verify_trace_source_raises(self):
        with pytest.raises(ast_lint.TraceLintError):
            ast_lint.verify_trace_source("def _trace(env):\n    return spam")

    def test_hook_lints_real_codegen(self):
        interp = Interpreter(_loop_program(), dispatch="superblock",
                             verify_traces=True)
        for _ in range(8):
            interp.run([])
        fast = [t for t in interp._traces.values() if t.fast is not None]
        assert fast, "hot loop must codegen under the lint hook"
        for trace in fast:
            assert not ast_lint.lint_trace_source(trace.source)


# -- caching through the AnalysisManager -------------------------------------------


class TestVerifyCaching:
    def test_warm_reverification_is_a_cache_hit(self):
        _, f, b = valid_function()
        b.ret(f.args[0])
        analyses = AnalysisManager()
        first = verify_function(f, tier="full", analyses=analyses)
        hits_before = analyses.hits
        second = verify_function(f, tier="full", analyses=analyses)
        assert second is first               # the cached result object
        assert analyses.hits == hits_before + 1

    def test_tiers_cache_independently(self):
        _, f, b = valid_function()
        b.ret(f.args[0])
        analyses = AnalysisManager()
        assert verify_function(f, tier="structural", analyses=analyses) is not \
            verify_function(f, tier="full", analyses=analyses)

    def test_invalidation_drops_verify_entries(self):
        _, f, b = valid_function()
        b.ret(f.args[0])
        analyses = AnalysisManager()
        first = verify_function(f, tier="full", analyses=analyses)
        # passes name only real analyses in preserve=: verify entries drop
        analyses.invalidate(f, preserve=("cfg", "domtree"))
        misses_before = analyses.misses
        second = verify_function(f, tier="full", analyses=analyses)
        assert second is not first
        assert analyses.misses > misses_before


# -- wiring: PassManager, obfuscators, post-link -----------------------------------


class _NoOpPass(Pass):
    name = "no-op"

    def run(self, program, analyses=None):
        return False


def _typed_broken_program():
    module = Module("m")
    f = create_function(module, "main", I64, [])
    b = IRBuilder(f.entry_block)
    bad = BinaryOp("add", Constant(I64, 1), Constant(F64, 2.0))
    b.block.append(bad)
    b.ret(bad)
    return Program("m", [module])


class TestVerifyWiring:
    def test_pass_manager_tiered_verify_each(self):
        program = _typed_broken_program()
        PassManager([_NoOpPass()], verify_each="structural").run(program)
        with pytest.raises(VerificationError):
            PassManager([_NoOpPass()], verify_each="typed").run(program)

    def test_assert_valid_tier_escalation(self):
        program = _typed_broken_program()
        assert_valid(program, tier="structural")
        with pytest.raises(VerificationError) as info:
            assert_valid(program, tier="typed")
        assert "binop-type" in str(info.value)

    def test_post_link_verify_env_gated(self, monkeypatch):
        module = Module("m")
        f = create_function(module, "main", I64, [])
        f.entry_block.append(
            BinaryOp("add", Constant(I64, 1), Constant(I64, 2)))
        program = Program("m", [module])
        monkeypatch.delenv("REPRO_VERIFY_IR", raising=False)
        program.link()                        # unverified: no raise
        monkeypatch.setenv("REPRO_VERIFY_IR", "structural")
        with pytest.raises(VerificationError):
            program.link()

    def test_obfuscators_verify_under_full_tier(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_IR", "full")
        from repro.baselines.ollvm import flattening_obfuscator
        from repro.core.obfuscator import Khaos, KhaosConfig
        program = load_suite("embedded")[0].build()
        Khaos(KhaosConfig(mode="fufi.ori", seed=1)).obfuscate(program)
        flattening_obfuscator(1.0).obfuscate(
            load_suite("embedded")[0].build())


# -- reg2mem demotion --------------------------------------------------------------


class TestReg2mem:
    def _broken_diamond(self):
        module = Module("m")
        f = create_function(module, "main", I64, [])
        entry = f.entry_block
        left = f.add_block("left")
        right = f.add_block("right")
        join = f.add_block("join")
        b = IRBuilder(entry)
        cond = b.icmp("eq", 1, 1, name="cond")
        b.cond_br(cond, left, right)
        lb = IRBuilder(left)
        value = lb.add(1, 2, name="v")
        lb.br(join)
        rb = IRBuilder(right)
        rb.br(join)
        IRBuilder(join).ret(value)    # %v does not dominate join
        return Program("m", [module]), f

    def test_demotes_exactly_the_broken_defs(self):
        program, f = self._broken_diamond()
        assert "dominance" in codes_of(dominance.check_function(f))
        assert demote_undominated(f) == 1
        assert not dominance.check_function(f)
        assert demote_undominated(f) == 0     # idempotent
        assert_valid(program, tier="full")

    def test_demotion_preserves_semantics(self):
        program, _f = self._broken_diamond()
        assert Interpreter(program).run([]).exit_value == 3

    def test_clean_function_untouched(self):
        _, f, b = valid_function()
        b.ret(b.add(f.args[0], 1))
        before = list(f.entry_block.instructions)
        assert demote_undominated(f) == 0
        assert f.entry_block.instructions == before


# -- diagnostics: baseline suppression and JSON ------------------------------------


class TestDiagnostics:
    def _findings(self):
        _, f, b = valid_function()
        slot = b.alloca(I64, name="slot")
        b.store(7, slot)
        b.ret(0)
        return verify(f, tier="full")

    def test_baseline_round_trip(self, tmp_path):
        findings = self._findings()
        assert findings
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        kept, suppressed = apply_baseline(findings, load_baseline(path))
        assert not kept
        assert len(suppressed) == len(findings)

    def test_baseline_schema_mismatch(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": 99, "suppressions": []}))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_json_output_parses(self):
        payload = json.loads(diagnostics_to_json(self._findings()))
        assert payload
        assert {"severity", "code", "message"} <= set(payload[0])

    def test_render_mentions_code(self):
        finding = self._findings()[0]
        assert f"[{finding.code}]" in finding.render()


# -- corpus property suite ---------------------------------------------------------


SCHEMES = ("fission", "fusion", "fufi.sep", "fufi.ori", "fufi.all",
           "sub", "bog", "fla")


def _sample_workloads():
    sample = []
    for suite in suite_names():
        loaded = load_suite(suite)
        sample.extend((suite, w) for w in loaded[:2])
    return sample


class TestCorpusVerifiesClean:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_scheme_outputs_verify_full(self, scheme):
        from repro.baselines.ollvm import (bogus_obfuscator,
                                           flattening_obfuscator,
                                           sub_obfuscator)
        from repro.core.obfuscator import Khaos, KhaosConfig
        for _suite, workload in _sample_workloads():
            program = workload.build()
            if scheme in ("sub", "bog", "fla"):
                factory = {"sub": sub_obfuscator, "bog": bogus_obfuscator,
                           "fla": lambda: flattening_obfuscator(1.0)}[scheme]
                result = factory().obfuscate(program, verify=False)
            else:
                result = Khaos(KhaosConfig(mode=scheme, seed=1)).obfuscate(
                    program, verify=False)
            errors = [d for d in verify(result.program, tier="full")
                      if d.is_error]
            assert not errors, (
                f"{workload.name}/{scheme}: "
                + "; ".join(d.render() for d in errors[:5]))

    def test_optimized_outputs_verify_full(self):
        from repro.opt import optimize_program
        for _suite, workload in _sample_workloads()[:4]:
            optimize_program(workload.build(), verify_each="full")

    def test_all_160_workloads_link_clean_at_full_tier(self):
        total = 0
        for suite in suite_names():
            for workload in load_suite(suite):
                program = workload.build().link()
                errors = [d for d in verify(program, tier="full")
                          if d.is_error]
                assert not errors, f"{workload.name}: {errors[:3]}"
                total += 1
        assert total == 160
