"""Store backends: local durability, the remote tier, and differentials.

The contracts this file pins down:

* :class:`LocalBackend` keeps the first writer's object and honours the
  ``REPRO_STORE_FSYNC`` durability gate — including under genuinely
  concurrent multi-process writers hammering the same keys;
* :class:`RemoteBackend` speaks the loopback ``scripts/store_server.py``
  protocol bit-faithfully: single and batched round trips, per-object
  checksum verification, the read-through cache tier, and the retry loop
  under seeded ``remote_fault`` chaos;
* a remote failure is **never** silently downgraded to a miss — a dead
  server raises :class:`RemoteStoreError` out of the store's read path and
  is counted per-cause in ``stats()["remote_errors"]``;
* the figure-8 sharded driver through a loopback remote store is
  bit-identical to the serial local reference, re-scores zero units on a
  warm rerun, and converges under injected network faults.
"""

import os
import pickle
import sys
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import pytest

from repro.evaluation.checkpoint import ShardRunStats
from repro.evaluation.diff_sharding import measure_precision_sharded
from repro.evaluation.executor import reset_worker_cache
from repro.evaluation.precision import measure_precision
from repro.faults import reset_injector
from repro.store import (KIND_SHARD, KIND_VARIANT, ArtifactStore, StoreError,
                         store_digest)
from repro.store.artifact_store import store_from_env, store_url_from_env
from repro.store.backend import (LocalBackend, RemoteBackend,
                                 RemoteStoreError, fsync_directory)
from repro.workloads.suites import spec2006_programs

SCRIPTS = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "scripts")
sys.path.insert(0, SCRIPTS)

from store_server import StoreServer  # noqa: E402

WORKLOADS = spec2006_programs()[:1]
LABELS = ("fission",)


@pytest.fixture
def server(tmp_path):
    """A loopback store server over a fresh tree."""
    root = str(tmp_path / "served")
    with StoreServer(root) as srv:
        yield srv


@pytest.fixture
def remote(server, monkeypatch):
    """A fast-failing client for the loopback server (tiny backoff)."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    reset_injector()
    yield RemoteBackend(server.url, backoff=0.001)
    reset_injector()


class TestLocalBackend:
    def test_first_writer_kept(self, tmp_path):
        backend = LocalBackend(str(tmp_path))
        assert backend.put("variant", "ab" * 32, b"first") is True
        assert backend.put("variant", "ab" * 32, b"second") is False
        assert backend.get("variant", "ab" * 32) == b"first"

    def test_overwrite_flag_wins(self, tmp_path):
        backend = LocalBackend(str(tmp_path))
        backend.put("variant", "cd" * 32, b"first")
        assert backend.put("variant", "cd" * 32, b"second",
                           overwrite=True) is True
        assert backend.get("variant", "cd" * 32) == b"second"

    def test_durability_gate(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_FSYNC", raising=False)
        assert LocalBackend(str(tmp_path)).durable() is True
        monkeypatch.setenv("REPRO_STORE_FSYNC", "off")
        assert LocalBackend(str(tmp_path)).durable() is False
        # an explicit constructor pin beats the environment
        assert LocalBackend(str(tmp_path), durable=True).durable() is True

    def test_delete_and_list(self, tmp_path):
        backend = LocalBackend(str(tmp_path))
        backend.put("variant", "ef" * 32, b"x")
        assert ("variant", "ef" * 32) in backend.list_refs()
        assert backend.delete("variant", "ef" * 32) is True
        assert backend.delete("variant", "ef" * 32) is False
        assert backend.get("variant", "ef" * 32) is None

    def test_fsync_directory_tolerates_missing(self, tmp_path):
        fsync_directory(str(tmp_path / "nope"))  # must not raise


def _stress_writer(args):
    """One writer process: put every key, report the payloads read back."""
    root, writer_id, keys = args
    store = ArtifactStore.attach(root, max_memory_entries=2)
    seen = {}
    for i in keys:
        store.put(KIND_VARIANT, ("stress", i), {"writer": writer_id, "i": i})
        seen[i] = store.get(KIND_VARIANT, ("stress", i))
    return seen


class TestConcurrentWriters:
    def test_first_writer_kept_across_processes(self, tmp_path):
        """N processes race the same keys; every key ends with exactly one
        internally consistent object that all readers agree on."""
        root = str(tmp_path / "store")
        ArtifactStore.attach(root, max_memory_entries=2)  # stamp the tree
        keys = list(range(16))
        with ProcessPoolExecutor(max_workers=4) as pool:
            outcomes = list(pool.map(
                _stress_writer,
                [(root, writer, keys) for writer in range(4)]))
        store = ArtifactStore.attach(root, max_memory_entries=2)
        writer_ids = set(range(4))
        for i in keys:
            winner = store.get(KIND_VARIANT, ("stress", i))
            # the published object is exactly ONE racing writer's payload,
            # never torn or interleaved
            assert isinstance(winner, dict) and winner["i"] == i
            assert winner["writer"] in writer_ids
            digest = store_digest(KIND_VARIANT, ("stress", i))
            path = store.object_path(KIND_VARIANT, digest)
            assert os.path.isfile(path)
            # no torn leftovers from the race
            assert not [name for name in os.listdir(os.path.dirname(path))
                        if ".tmp." in name]
        # every writer observed internally consistent payloads throughout
        # (its own in-process memory layer or the disk winner — both are
        # complete objects; real payloads are deterministic per key)
        for seen in outcomes:
            for i, payload in seen.items():
                assert isinstance(payload, dict) and payload["i"] == i


class TestRemoteBackend:
    def test_round_trip(self, remote):
        digest = "ab" * 32
        assert remote.get("variant", digest) is None
        assert remote.contains("variant", digest) is False
        assert remote.put("variant", digest, b"payload") is True
        assert remote.put("variant", digest, b"other") is False  # kept
        assert remote.get("variant", digest) == b"payload"
        assert remote.contains("variant", digest) is True
        assert ("variant", digest) in remote.list_refs()
        assert remote.delete("variant", digest) is True
        assert remote.get("variant", digest) is None

    def test_manifest_carries_schema(self, remote):
        manifest = remote.manifest()
        assert isinstance(manifest["store_schema"], int)
        assert isinstance(manifest["key_schema"], int)

    def test_batched_round_trip(self, remote):
        items = [("variant", f"{i:02x}" * 32, f"obj-{i}".encode())
                 for i in range(10)]
        assert remote.put_many(items) == 10
        assert remote.put_many(items) == 0  # all kept
        refs = [(kind, digest) for kind, digest, _ in items]
        found = remote.get_many(refs)
        assert found == {(kind, digest): data
                         for kind, digest, data in items}
        presence = remote.contains_many(refs + [("variant", "ff" * 32)])
        assert all(presence[ref] for ref in refs)
        assert presence[("variant", "ff" * 32)] is False

    def test_invalid_url_rejected(self):
        with pytest.raises(ValueError, match="http"):
            RemoteBackend("ftp://nope")

    def test_dead_server_raises_not_misses(self, tmp_path):
        backend = RemoteBackend("http://127.0.0.1:9", retries=1,
                                backoff=0.001, timeout=0.5)
        with pytest.raises(RemoteStoreError):
            backend.get("variant", "ab" * 32)
        with pytest.raises(RemoteStoreError):
            backend.get_many([("variant", "ab" * 32)])

    def test_remote_store_error_is_oserror(self):
        # worker attach degradation catches OSError; the read path
        # re-raises RemoteStoreError explicitly before corrupt handling
        assert issubclass(RemoteStoreError, ConnectionError)
        assert issubclass(RemoteStoreError, OSError)

    def test_checksum_rejects_torn_transport(self, remote):
        from repro.store.backend import _ChecksumMismatch
        digest = "ab" * 32
        good = b"clean bytes"
        checksum = __import__("hashlib").sha256(good).hexdigest()
        # client side: a response whose bytes do not match the advertised
        # checksum is a retryable transport failure, never a served object
        with pytest.raises(_ChecksumMismatch):
            RemoteBackend._verify(b"torn byte", checksum, "variant/ab")
        RemoteBackend._verify(good, checksum, "variant/ab")  # no raise

    def test_checksum_rejects_torn_upload(self, remote):
        # server side: a PUT whose body contradicts its checksum header is
        # refused outright (400 → immediate RemoteStoreError, no retries)
        digest = "ab" * 32
        backend = remote

        def bad_put():
            import hashlib as h
            from repro.store.backend import CHECKSUM_HEADER
            headers = {CHECKSUM_HEADER: h.sha256(b"promised").hexdigest(),
                       "Content-Type": "application/octet-stream"}
            return backend._request("PUT", f"/objects/variant/{digest}",
                                    body=b"delivered", headers=headers)

        with pytest.raises(RemoteStoreError) as excinfo:
            bad_put()
        assert excinfo.value.cause == "http_400"
        assert backend.contains("variant", digest) is False

    def test_cache_tier_survives_server_loss(self, tmp_path):
        root = str(tmp_path / "served")
        cache_dir = str(tmp_path / "cache")
        digest = "ab" * 32
        with StoreServer(root) as srv:
            backend = RemoteBackend(srv.url, cache_dir=cache_dir,
                                    backoff=0.001)
            backend.put("variant", digest, b"cached payload")
            assert backend.get("variant", digest) == b"cached payload"
        # server gone: the read-through cache still serves the object
        offline = RemoteBackend(srv.url, cache_dir=cache_dir, retries=0,
                                backoff=0.001, timeout=0.5)
        assert offline.get("variant", digest) == b"cached payload"
        assert offline.contains("variant", digest) is True

    def test_run_journal_round_trip(self, remote):
        assert remote.fetch_run_journal("runabc") == ""
        remote.append_run_journal("runabc", '{"digest": "d1"}\n')
        remote.append_run_journal("runabc", '{"digest": "d2"}\n')
        text = remote.fetch_run_journal("runabc")
        assert text == '{"digest": "d1"}\n{"digest": "d2"}\n'


class TestRemoteFaultInjection:
    def test_seeded_faults_retry_to_convergence(self, server, monkeypatch):
        """With remote_fault chaos active every operation still converges:
        attempts re-roll, so the retry budget absorbs injected resets."""
        monkeypatch.setenv("REPRO_FAULTS", "remote_fault:p=0.15,seed=7")
        reset_injector()
        backend = RemoteBackend(server.url, backoff=0.001)
        for i in range(12):
            digest = f"{i:02x}" * 32
            assert backend.put("variant", digest, f"v{i}".encode()) is True
            assert backend.get("variant", digest) == f"v{i}".encode()
        from repro.faults import active_injector
        injector = active_injector()
        assert injector is not None and injector.fired["remote_fault"] > 0
        reset_injector()

    def test_fault_exhaustion_raises_with_cause(self, server, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "remote_fault:p=1.0,seed=1")
        reset_injector()
        backend = RemoteBackend(server.url, retries=2, backoff=0.001)
        with pytest.raises(RemoteStoreError) as excinfo:
            backend.get("variant", "ab" * 32)
        assert excinfo.value.cause == "ConnectionResetError"
        reset_injector()


class TestRemoteArtifactStore:
    def test_connect_and_round_trip(self, server):
        store = ArtifactStore.connect(server.url, max_memory_entries=4)
        assert store.persistent and store.root is None
        store.put(KIND_VARIANT, ("remote", 1), {"value": 1})
        # a second attachment sees it (no shared memory layer)
        other = ArtifactStore.connect(server.url, max_memory_entries=4)
        assert other.get(KIND_VARIANT, ("remote", 1)) == {"value": 1}
        stats = other.stats()
        assert stats["backend"].startswith("remote:")
        assert stats["remote_errors"] == {}

    def test_schema_mismatch_rejected(self, server):
        class _StaleServer(RemoteBackend):
            def manifest(self):
                return {"store_schema": 1, "key_schema": 1}

        with pytest.raises(StoreError, match="schema"):
            ArtifactStore(backend=_StaleServer(server.url, backoff=0.001),
                          max_memory_entries=4)
        # the real server's stamp attaches fine
        ArtifactStore.connect(server.url, max_memory_entries=4)

    def test_dead_server_read_raises_not_miss(self, server):
        store = ArtifactStore.connect(server.url, max_memory_entries=4)
        store.put(KIND_VARIANT, ("gone", 1), {"value": 1})
        store.clear_memory()
        server.stop()
        store.backend.retries = 0
        store.backend.timeout = 0.5
        with pytest.raises(RemoteStoreError):
            store.get(KIND_VARIANT, ("gone", 1), None)
        assert sum(store.remote_errors.values()) > 0

    def test_quarantine_heals_over_the_wire(self, server):
        store = ArtifactStore.connect(server.url, max_memory_entries=4)
        store.put(KIND_SHARD, ("heal", 1), {"value": 1})
        store.clear_memory()
        digest = store_digest(KIND_SHARD, ("heal", 1))
        path = server.state.backend.object_path(KIND_SHARD, digest)
        # valid pickle, wrong envelope: passes the transport checksum,
        # fails semantic validation client-side
        with open(path, "wb") as fh:
            pickle.dump({"not": "an envelope"}, fh)
        assert store.get(KIND_SHARD, ("heal", 1), "missing") == "missing"
        # the server moved the corpse aside; a rebuild publishes cleanly
        assert os.path.isfile(
            server.state.backend.quarantine_path(KIND_SHARD, digest))
        store.put(KIND_SHARD, ("heal", 1), {"value": 2})
        store.clear_memory()
        assert store.get(KIND_SHARD, ("heal", 1)) == {"value": 2}

    def test_prefetch_coalesces(self, server):
        store = ArtifactStore.connect(server.url, max_memory_entries=64)
        keys = [("pre", i) for i in range(20)]
        for key in keys:
            store.put(KIND_VARIANT, key, {"k": key})
        store.clear_memory()
        store.reset_counters()
        assert store.prefetch(KIND_VARIANT, keys) == 20
        batches = store.metrics.get("store.remote.batch_requests", 0)
        assert 0 < batches < 20  # coalesced, not one request per object
        for key in keys:
            assert store.get(KIND_VARIANT, key) == {"k": key}
        assert store.stats()["memory_hits"] >= 20

    def test_threaded_writers_first_writer_kept(self, server):
        def hammer(writer_id):
            backend = RemoteBackend(server.url, backoff=0.001)
            return [backend.put("variant", f"{i:02x}" * 32,
                                f"w{writer_id}".encode())
                    for i in range(8)]

        with ThreadPoolExecutor(max_workers=4) as pool:
            outcomes = list(pool.map(hammer, range(4)))
        # exactly one winner per key across all racing writers
        for i in range(8):
            wins = sum(outcome[i] for outcome in outcomes)
            assert wins == 1


class TestStoreFromEnv:
    def test_url_wins_over_dir(self, server, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_URL", server.url)
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "unused"))
        assert store_url_from_env() == server.url
        store = store_from_env(max_memory_entries=4)
        assert store is not None and store.url == server.url

    def test_no_env_no_store(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_URL", raising=False)
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        monkeypatch.delenv("REPRO_VARIANT_CACHE_DIR", raising=False)
        assert store_from_env(max_memory_entries=4) is None

    def test_cache_dir_env_wires_the_tier(self, server, tmp_path,
                                          monkeypatch):
        cache_dir = str(tmp_path / "cache")
        monkeypatch.setenv("REPRO_STORE_URL", server.url)
        monkeypatch.setenv("REPRO_STORE_CACHE_DIR", cache_dir)
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        store = store_from_env(max_memory_entries=4)
        assert store.backend.cache is not None
        assert store.backend.cache.root == os.path.abspath(cache_dir)


class TestRemoteDifferential:
    """Figure 8 through a loopback remote store, against the serial local
    reference — the ISSUE's bit-identity + zero-rescore acceptance."""

    def _remote_env(self, monkeypatch, url):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        monkeypatch.delenv("REPRO_VARIANT_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_STORE_CACHE_DIR", raising=False)
        monkeypatch.setenv("REPRO_STORE_URL", url)
        monkeypatch.setenv("REPRO_REMOTE_BACKOFF", "0.001")
        reset_worker_cache()

    def test_fig8_remote_matches_serial_and_warm_rerun_is_free(
            self, server, monkeypatch):
        serial = measure_precision(WORKLOADS, labels=LABELS)

        self._remote_env(monkeypatch, server.url)
        try:
            cold_stats = ShardRunStats()
            cold = measure_precision_sharded(WORKLOADS, labels=LABELS,
                                             jobs=2, run_stats=cold_stats)
            assert cold.rows == serial.rows
            assert cold_stats.executed == cold_stats.planned > 0

            reset_worker_cache()
            warm_stats = ShardRunStats()
            warm = measure_precision_sharded(WORKLOADS, labels=LABELS,
                                             jobs=2, run_stats=warm_stats)
            assert warm.rows == serial.rows
            assert warm_stats.executed == 0
            assert warm_stats.resumed == warm_stats.planned
        finally:
            reset_worker_cache()

    def test_fig8_remote_converges_under_network_faults(self, server,
                                                        monkeypatch):
        serial = measure_precision(WORKLOADS, labels=LABELS)
        self._remote_env(monkeypatch, server.url)
        monkeypatch.setenv("REPRO_FAULTS", "remote_fault:p=0.05,seed=11")
        reset_injector()
        try:
            chaotic = measure_precision_sharded(WORKLOADS, labels=LABELS,
                                                jobs=2)
            assert chaotic.rows == serial.rows
        finally:
            reset_injector()
            reset_worker_cache()
