"""Tests for lowering, the Binary container and opcode histograms."""

import pytest

from repro.backend import (disassemble, lower_function, lower_program,
                           normalised_distances, opcode_histogram,
                           opcode_histogram_distance, instruction_category)
from repro.ir import FunctionType, IRBuilder, Module, create_function, I64
from repro.opt import optimize_program


class TestLowering:
    def test_every_defined_function_lowered(self, demo_program):
        binary = lower_program(demo_program)
        names = set(binary.function_names())
        assert {"main", "classify", "scale", "mix", "select_op"} <= names
        # declarations (putint) are not lowered
        assert "putint" not in names

    def test_prologue_and_return(self, demo_module):
        lowered = lower_function(demo_module.get_function("scale"))
        opcodes = [inst.opcode for inst in lowered.instructions()]
        assert opcodes[0] == "push"
        assert "ret" in opcodes and "leave" in opcodes

    def test_direct_call_records_target(self, demo_module):
        lowered = lower_function(demo_module.get_function("main"))
        assert "classify" in lowered.call_targets()
        assert lowered.call_count >= 9

    def test_branches_reference_block_labels(self, demo_module):
        lowered = lower_function(demo_module.get_function("classify"))
        labels = {block.label for block in lowered.blocks}
        for block in lowered.blocks:
            for successor in block.successors:
                assert successor in labels

    def test_stack_arguments_emit_push(self):
        module = Module("m")
        many = create_function(module, "many", I64, [I64] * 8)
        mb = IRBuilder(many.entry_block)
        mb.ret(many.args[7])
        main = create_function(module, "main", I64, [])
        b = IRBuilder(main.entry_block)
        b.ret(b.call(many, list(range(8))))
        lowered = lower_function(main)
        opcodes = [inst.opcode for inst in lowered.instructions()]
        assert opcodes.count("push") >= 3  # prologue push + 2 stack args

    def test_tag_intrinsics_lower_inline(self):
        from repro.ir import PointerType
        module = Module("m")
        pointer = PointerType(FunctionType(I64, [], variadic=True))
        extract = module.declare_function("__khaos_extract_tag",
                                          FunctionType(I64, [pointer]))
        target = create_function(module, "target", I64, [])
        IRBuilder(target.entry_block).ret(0)
        f = create_function(module, "main", I64, [])
        b = IRBuilder(f.entry_block)
        b.ret(b.call(extract, [target]))
        lowered = lower_function(f)
        assert not lowered.call_targets()  # no call emitted for the intrinsic
        assert "sar" in [i.opcode for i in lowered.instructions()]


class TestBinary:
    def test_function_features(self, demo_program):
        binary = lower_program(demo_program)
        classify = binary.get_function("classify")
        assert classify.block_count == 6
        assert classify.edge_count >= 6
        assert classify.size > 0

    def test_call_graph_edges(self, demo_program):
        binary = lower_program(demo_program)
        edges = set(binary.call_graph_edges())
        assert ("main", "classify") in edges
        assert binary.callers_of("classify") == {"main"}
        assert "classify" in binary.callees_of("main")

    def test_strip_anonymises_names(self, demo_program):
        binary = lower_program(demo_program)
        stripped = binary.strip()
        assert stripped.stripped
        assert all(name.startswith("sub_") for name in stripped.function_names())
        # call targets are consistently renamed
        mapping = stripped.metadata["strip_mapping"]
        main = stripped.get_function(mapping["main"])
        assert mapping["classify"] in main.call_targets()

    def test_total_counts(self, demo_program):
        binary = lower_program(demo_program)
        assert binary.total_instructions == sum(
            f.instruction_count for f in binary.functions)
        assert binary.total_size > binary.total_instructions


class TestHistograms:
    def test_histogram_counts_opcodes(self, demo_program):
        binary = lower_program(demo_program)
        histogram = opcode_histogram(binary)
        assert histogram["mov"] > 0
        assert sum(histogram.values()) == binary.total_instructions

    def test_distance_zero_for_identical(self, demo_program):
        binary = lower_program(demo_program)
        assert opcode_histogram_distance(binary, binary) == 0.0

    def test_distance_positive_after_optimization(self, demo_program):
        o0 = lower_program(demo_program)
        o2 = lower_program(optimize_program(demo_program))
        assert opcode_histogram_distance(o0, o2) > 0.0

    def test_normalised_distances_max_is_one(self, demo_program):
        o0 = lower_program(demo_program)
        o2 = lower_program(optimize_program(demo_program))
        distances = normalised_distances(o0, {"same": o0, "opt": o2})
        assert distances["opt"] == pytest.approx(1.0)
        assert distances["same"] == pytest.approx(0.0)

    def test_disassemble_listing(self, demo_program):
        listing = disassemble(lower_program(demo_program))
        assert "classify" in listing and "push rbp" in listing

    def test_instruction_categories(self):
        assert instruction_category("add") == "arithmetic"
        assert instruction_category("jmp") == "transfer"
        assert instruction_category("call") == "call"
        assert instruction_category("push") == "stack"
        assert instruction_category("cmp") == "compare"
