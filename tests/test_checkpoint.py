"""Checkpoint/resume: run manifests, journaled shards, strict resume.

The acceptance criterion this file pins down: a matrix run killed partway
and restarted against the same store tree re-executes *only* the unfinished
shard units — journaled units revive from the store with zero re-executes.
Also covered: the manifest's torn-line tolerance, the advisory-manifest /
store-is-truth rule, and the pass-through contract when no store tree (or
``REPRO_CHECKPOINT=off``) is in play.
"""

import os

import pytest

from repro.evaluation.checkpoint import (RUNS_DIR, RunManifest,
                                         ShardRunStats, checkpoint_enabled,
                                         run_checkpointed, run_id)
from repro.evaluation.diff_sharding import (DiffShardStats,
                                            measure_precision_sharded)
from repro.evaluation.executor import reset_worker_cache
from repro.evaluation.precision import measure_precision
from repro.evaluation.sharding import measure_overhead_sharded
from repro.store import KIND_SHARD, ArtifactStore, store_digest
from repro.workloads.suites import spec2006_programs

WORKLOADS = spec2006_programs()[:1]
LABELS = ("fission",)


class TestCheckpointEnabled:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT", raising=False)
        assert checkpoint_enabled()

    @pytest.mark.parametrize("value, expected", [
        ("on", True), ("1", True), ("true", True), ("", True),
        ("off", False), ("0", False), ("false", False), ("OFF", False),
    ])
    def test_explicit_values(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_CHECKPOINT", value)
        assert checkpoint_enabled() is expected

    def test_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT", "maybe")
        with pytest.raises(ValueError, match="REPRO_CHECKPOINT"):
            checkpoint_enabled()


class TestRunManifest:
    def test_round_trip(self, tmp_path):
        manifest = RunManifest(str(tmp_path), "abc123")
        assert manifest.done == set()
        manifest.mark_done("d1")
        manifest.mark_done("d2")
        reloaded = RunManifest(str(tmp_path), "abc123")
        assert reloaded.done == {"d1", "d2"}
        assert reloaded.path.endswith(os.path.join(RUNS_DIR, "abc123.jsonl"))

    def test_torn_trailing_line_under_reports_only(self, tmp_path):
        manifest = RunManifest(str(tmp_path), "torn")
        manifest.mark_done("ok1")
        manifest.mark_done("ok2")
        # simulate a writer killed mid-append: a truncated JSON line
        with open(manifest.path, "a", encoding="utf-8") as fh:
            fh.write('{"digest": "half')
        reloaded = RunManifest(str(tmp_path), "torn")
        assert reloaded.done == {"ok1", "ok2"}

    def test_distinct_identities_distinct_journals(self, tmp_path):
        RunManifest(str(tmp_path), "one").mark_done("d")
        assert RunManifest(str(tmp_path), "two").done == set()

    def test_run_id_is_stable_and_sensitive(self):
        parts = ("fig8", ("k1", "k2"))
        assert run_id(parts) == run_id(("fig8", ("k1", "k2")))
        assert run_id(parts) != run_id(("fig8", ("k1",)))
        assert len(run_id(parts)) == 16


def _square(value):
    return value * value


class _FailAt:
    """Picklable task_fn that raises on one designated input value."""

    def __init__(self, poison):
        self.poison = poison

    def __call__(self, value):
        if value == self.poison:
            raise RuntimeError(f"poisoned input {value}")
        return value * value


def _keys(values):
    return [("ckpt-test", value) for value in values]


class TestRunCheckpointed:
    def test_no_store_is_plain_pass_through(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        monkeypatch.delenv("REPRO_VARIANT_CACHE_DIR", raising=False)
        stats = ShardRunStats()
        values = [1, 2, 3]
        out = run_checkpointed(_square, values, _keys(values),
                               ("t", 1), jobs=1, stats=stats)
        assert out == [1, 4, 9]
        assert stats.planned == 0  # layer never engaged

    def test_checkpoint_off_is_pass_through(self, tmp_store, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT", "off")
        values = [1, 2, 3]
        out = run_checkpointed(_square, values, _keys(values), ("t", 2),
                               jobs=1)
        assert out == [1, 4, 9]
        assert not os.path.isdir(os.path.join(tmp_store, RUNS_DIR))

    def test_mismatched_keys_raise(self, tmp_store):
        with pytest.raises(ValueError, match="2 tasks but 1 keys"):
            run_checkpointed(_square, [1, 2], [("k", 1)], ("t", 3))

    def test_interrupted_run_resumes_only_unfinished(self, tmp_store):
        """The acceptance criterion in miniature: kill mid-run, restart,
        and only the units the journal never saw execute again."""
        values = [1, 2, 3, 4, 5]
        keys = _keys(values)
        parts = ("t", 4)
        # first run dies on input 4: inputs 1..3 are already journaled
        # (the serial path journals each result the moment it lands, and
        # re-raises task exceptions raw)
        with pytest.raises(RuntimeError, match="poisoned input 4"):
            run_checkpointed(_FailAt(4), values, keys, parts, jobs=1)
        manifest = RunManifest(tmp_store, run_id(parts))
        assert len(manifest.done) == 3

        executed = []

        def counting(value):
            executed.append(value)
            return value * value

        stats = ShardRunStats()
        out = run_checkpointed(counting, values, keys, parts, jobs=1,
                               stats=stats)
        assert out == [1, 4, 9, 16, 25]
        assert executed == [4, 5]  # journaled units never re-execute
        assert stats.planned == 5 and stats.resumed == 3
        assert stats.executed == 2 and stats.journaled == 2

    def test_completed_run_restart_executes_nothing(self, tmp_store):
        values = [1, 2, 3]
        keys = _keys(values)
        run_checkpointed(_square, values, keys, ("t", 5), jobs=1)
        stats = ShardRunStats()
        out = run_checkpointed(_FailAt(1), values, keys, ("t", 5), jobs=1,
                               stats=stats)  # poison proves nothing runs
        assert out == [1, 4, 9]
        assert stats.resumed == 3 and stats.executed == 0

    def test_journaled_but_lost_object_re_executes(self, tmp_store):
        """The manifest is advisory; the store is the truth."""
        values = [1, 2, 3]
        keys = _keys(values)
        parts = ("t", 6)
        run_checkpointed(_square, values, keys, parts, jobs=1)
        store = ArtifactStore.attach(tmp_store)
        victim = store.object_path(KIND_SHARD,
                                   store_digest(KIND_SHARD, keys[1]))
        os.unlink(victim)
        reset_worker_cache()
        stats = ShardRunStats()
        out = run_checkpointed(_square, values, keys, parts, jobs=1,
                               stats=stats)
        assert out == [1, 4, 9]
        assert stats.resumed == 2 and stats.executed == 1

    def test_normalize_applies_to_revived_results_only(self, tmp_store):
        values = [1, 2]
        keys = _keys(values)
        parts = ("t", 7)
        run_checkpointed(_square, values, keys, parts, jobs=1)
        out = run_checkpointed(_square, values, keys, parts, jobs=1,
                               normalize=lambda r: -r)
        assert out == [-1, -4]

    def test_run_parts_partition_journals(self, tmp_store):
        """Two different matrices over one tree keep separate journals:
        a fresh run identity resumes nothing, even when the store already
        holds every shard object from another run."""
        values = [2, 3]
        keys = _keys(values)
        run_checkpointed(_square, values, keys, ("matrix", "A"), jobs=1)
        stats = ShardRunStats()
        run_checkpointed(_square, values, keys, ("matrix", "C"), jobs=1,
                         stats=stats)
        assert stats.resumed == 0 and stats.executed == 2


class TestMatrixResume:
    """End-to-end resume through the real fig6/7 and fig8 drivers."""

    def _rows(self, report):
        return [(r.program, r.suite, r.tool, r.label, r.precision,
                 r.similarity_score) for r in report.rows]

    def test_fig8_completed_restart_revives_every_shard(self, tmp_store):
        from repro.diffing import all_differs
        differs = all_differs()[:1]
        reference = self._rows(measure_precision(WORKLOADS, labels=LABELS,
                                                 differs=differs))
        first = ShardRunStats()
        reset_worker_cache()
        rows = self._rows(measure_precision_sharded(
            WORKLOADS, labels=LABELS, differs=differs, jobs=1,
            run_stats=first))
        assert rows == reference
        assert first.executed == first.planned > 0

        reset_worker_cache()
        second = ShardRunStats()
        second_stats = DiffShardStats()
        resumed = self._rows(measure_precision_sharded(
            WORKLOADS, labels=LABELS, differs=differs, jobs=1,
            stats=second_stats, run_stats=second))
        assert resumed == reference
        assert second.executed == 0
        assert second.resumed == second.planned == first.planned
        assert second_stats.units_scored == 0

    def test_fig67_completed_restart_revives_every_shard(self, tmp_store):
        first = ShardRunStats()
        reset_worker_cache()
        baseline = measure_overhead_sharded(WORKLOADS, labels=LABELS,
                                            jobs=1, run_stats=first)
        assert first.executed == first.planned > 0
        reset_worker_cache()
        second = ShardRunStats()
        resumed = measure_overhead_sharded(WORKLOADS, labels=LABELS,
                                           jobs=1, run_stats=second)
        assert self._overhead_rows(resumed) == self._overhead_rows(baseline)
        assert second.executed == 0 and second.resumed == first.planned

    def _overhead_rows(self, report):
        return [(r.program, r.suite, r.label, r.baseline_cycles, r.cycles)
                for r in report.rows]
