"""Differential suite: FeatureIndex fast path vs legacy per-diff extraction.

Every tool must produce a bit-identical :class:`~repro.diffing.base.DiffResult`
(matches, candidate order, similarity scores) whether its features come from
the memoised per-binary :class:`~repro.diffing.index.FeatureIndex` or from
the legacy per-diff extraction, across obfuscated variants.  Also covers the
similarity kernel (pre-normalized vectors, heap-based top-k) and the index
memoisation itself.
"""

import gc

import pytest

from repro.diffing import all_differs, clear_index_cache, feature_index
from repro.diffing.base import BinaryDiffer, use_indexed_features
from repro.diffing.features import (EMBEDDING_DIM, NormalizedVector,
                                    block_tokens, cached_token_vector, cosine,
                                    embed_block, embed_tokens,
                                    instruction_bag, instruction_tokens,
                                    normalised_similarity, vector_similarity)
from repro.diffing.index import index_cache_size
from repro.toolchain import build_baseline, build_obfuscated, obfuscator_for
from repro.workloads.suites import find_program
from tests.conftest import build_demo_program

DIFF_LABELS = ("sub", "fla", "fufi.sep", "fufi.all")


@pytest.fixture(scope="module")
def demo_variants():
    baseline = build_baseline(build_demo_program())
    variants = {label: build_obfuscated(build_demo_program(),
                                        obfuscator_for(label))
                for label in DIFF_LABELS}
    return baseline, variants


def _diff_with(differ: BinaryDiffer, original, obfuscated, indexed: bool):
    previous = differ.use_index
    differ.use_index = indexed
    try:
        return differ.diff(original, obfuscated)
    finally:
        differ.use_index = previous


class TestDifferentialDiffResults:
    @pytest.mark.parametrize("differ", all_differs(), ids=lambda d: d.name)
    def test_indexed_path_bit_identical_to_legacy(self, differ, demo_variants):
        baseline, variants = demo_variants
        for label, variant in variants.items():
            fast = _diff_with(differ, baseline.binary, variant.binary, True)
            slow = _diff_with(differ, baseline.binary, variant.binary, False)
            # whole matches dict: function set, candidate order, exact scores
            assert fast.matches == slow.matches, (differ.name, label)
            assert fast.similarity_score == slow.similarity_score, \
                (differ.name, label)
            assert (fast.tool, fast.original, fast.obfuscated) == \
                   (slow.tool, slow.original, slow.obfuscated)

    @pytest.mark.parametrize("differ", all_differs(), ids=lambda d: d.name)
    def test_repeated_indexed_diffs_are_stable(self, differ, demo_variants):
        """Memoised features must not drift between diff calls."""
        baseline, variants = demo_variants
        variant = variants["fufi.all"]
        first = _diff_with(differ, baseline.binary, variant.binary, True)
        second = _diff_with(differ, baseline.binary, variant.binary, True)
        assert first.matches == second.matches
        assert first.similarity_score == second.similarity_score

    def test_workload_scale_differential(self):
        """The differential also holds on a synthesised SPEC workload."""
        workload = find_program("429.mcf")
        baseline = build_baseline(workload.build())
        variant = build_obfuscated(workload.build(), obfuscator_for("fufi.ori"))
        for differ in all_differs():
            fast = _diff_with(differ, baseline.binary, variant.binary, True)
            slow = _diff_with(differ, baseline.binary, variant.binary, False)
            assert fast.matches == slow.matches, differ.name
            assert fast.similarity_score == slow.similarity_score, differ.name

    def test_env_var_selects_legacy_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIFF_FEATURES", "legacy")
        assert not use_indexed_features()
        monkeypatch.setenv("REPRO_DIFF_FEATURES", "indexed")
        assert use_indexed_features()
        monkeypatch.delenv("REPRO_DIFF_FEATURES")
        assert use_indexed_features()


class TestIndexMemoisation:
    def test_same_binary_same_index(self, demo_variants):
        baseline, _ = demo_variants
        assert feature_index(baseline.binary) is feature_index(baseline.binary)

    def test_distinct_binaries_distinct_indexes(self, demo_variants):
        baseline, variants = demo_variants
        assert feature_index(baseline.binary) is not \
            feature_index(variants["sub"].binary)

    def test_dropping_the_binary_evicts_the_entry(self):
        clear_index_cache()
        artifact = build_baseline(build_demo_program())
        feature_index(artifact.binary)
        assert index_cache_size() == 1
        del artifact
        gc.collect()
        assert index_cache_size() == 0

    def test_memo_builds_once_per_key(self, demo_variants):
        baseline, _ = demo_variants
        index = feature_index(baseline.binary)
        calls = []
        first = index.memo(("test", 1), lambda: calls.append(1) or "value")
        second = index.memo(("test", 1), lambda: calls.append(2) or "other")
        assert first == second == "value"
        assert calls == [1]


class TestSimilarityKernel:
    def test_normalized_vector_matches_cosine(self):
        a = embed_tokens(["add", "mov", "call.direct"], EMBEDDING_DIM)
        b = embed_tokens(["sub", "mov", "jmp"], EMBEDDING_DIM)
        expected = normalised_similarity(a, b)
        actual = vector_similarity(NormalizedVector(a), NormalizedVector(b))
        assert actual == pytest.approx(expected, abs=1e-12)

    def test_zero_vector_degenerate_cases(self):
        zero = NormalizedVector([0.0] * 4)
        other = NormalizedVector([1.0, 0.0, 0.0, 0.0])
        assert zero.norm == 0.0
        # matches (cosine + 1) / 2 for the zero-vector special cases
        assert vector_similarity(zero, zero) == 1.0
        assert vector_similarity(zero, other) == 0.5
        assert cosine([0.0] * 4, [0.0] * 4) == 1.0

    def test_self_similarity_close_to_one(self):
        vector = NormalizedVector(cached_token_vector("arithmetic"))
        assert vector_similarity(vector, vector) == pytest.approx(1.0)

    def test_instruction_bag_matches_token_embedding_exactly(self, demo_variants):
        """The shape-keyed bag cache is the seed per-instruction embedding."""
        baseline, _ = demo_variants
        for function in baseline.binary.functions:
            for inst in function.instructions():
                assert list(instruction_bag(inst, EMBEDDING_DIM)) == \
                    embed_tokens(instruction_tokens(inst), EMBEDDING_DIM)

    def test_embed_block_matches_seed_token_level_embedding(self, demo_variants):
        """Summing per-instruction bags only regroups the seed math: it must
        agree with the flat token-stream embedding up to FP reassociation."""
        baseline, variants = demo_variants
        for binary in (baseline.binary, variants["fufi.all"].binary):
            for function in binary.functions:
                for block in function.blocks:
                    grouped = embed_block(block, EMBEDDING_DIM)
                    flat = embed_tokens(block_tokens(block), EMBEDDING_DIM)
                    assert grouped == pytest.approx(flat, abs=1e-9)

    def test_normalized_vector_pickles(self):
        import pickle
        vector = NormalizedVector([3.0, 4.0])
        clone = pickle.loads(pickle.dumps(vector))
        assert list(clone.values) == list(vector.values)
        assert clone.norm == vector.norm

    def test_rank_by_similarity_heap_matches_full_sort(self, demo_variants):
        baseline, variants = demo_variants
        original = baseline.binary
        obfuscated = variants["fufi.all"].binary

        def similarity(a, b):
            return (len(a.name) * 31 + len(b.name)) % 7 / 7.0  # many ties

        for k in (1, 3, 50, 1000):
            heap_ranked = BinaryDiffer.rank_by_similarity(
                original, obfuscated, similarity, max_candidates=k)
            for source in original.functions:
                scored = [(t.name, similarity(source, t))
                          for t in obfuscated.functions]
                scored.sort(key=lambda pair: (-pair[1], pair[0]))
                assert heap_ranked[source.name] == scored[:k]


class TestEmbedTokensWeights:
    def test_optional_weights_annotation_and_equivalence(self):
        tokens = ["add", "mov", "mov", "jmp"]
        unweighted = embed_tokens(tokens)
        unit_weights = embed_tokens(tokens, weights=[1.0] * len(tokens))
        assert unweighted == unit_weights

    def test_weights_scale_contributions(self):
        tokens = ["add", "mov"]
        doubled = embed_tokens(tokens, weights=[2.0, 2.0])
        single = embed_tokens(tokens)
        assert doubled == pytest.approx([2.0 * x for x in single])

    def test_empty_tokens(self):
        assert embed_tokens([], dim=8) == [0.0] * 8
