"""End-to-end tests of the Khaos driver: every mode, through the full pipeline."""

import pytest

from repro.core import Khaos, KhaosConfig, Mode, obfuscate
from repro.opt import optimize_program
from repro.toolchain import (ALL_LABELS, KhaosVariant, build_all_variants,
                             build_baseline, build_obfuscated, obfuscator_for,
                             overhead_percent)
from repro.vm import run_program
from repro.workloads import find_program
from tests.conftest import build_demo_program


@pytest.fixture(scope="module")
def demo_baseline():
    return run_program(optimize_program(build_demo_program())).observable()


class TestModes:
    @pytest.mark.parametrize("mode", Mode.ALL)
    def test_mode_preserves_semantics(self, mode, demo_baseline):
        result = obfuscate(build_demo_program(), mode=mode)
        optimized = optimize_program(result.program)
        assert run_program(optimized).observable() == demo_baseline

    @pytest.mark.parametrize("mode", Mode.ALL)
    def test_mode_records_label_and_metadata(self, mode):
        result = obfuscate(build_demo_program(), mode=mode)
        assert result.label == mode
        assert result.program.metadata["khaos_mode"] == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            KhaosConfig(mode="nonsense")

    def test_fufi_sep_only_fuses_sepfuncs(self):
        result = obfuscate(build_demo_program(), mode=Mode.FUFI_SEP)
        module = result.program.modules[0]
        for f in module.defined_functions():
            if f.attributes.get("khaos_kind") == "fusfunc":
                for side in f.attributes["khaos_sides"]:
                    assert ".sep." in side

    def test_fufi_ori_does_not_fuse_fissioned_functions(self):
        result = obfuscate(build_demo_program(), mode=Mode.FUFI_ORI)
        module = result.program.modules[0]
        for f in module.defined_functions():
            if f.attributes.get("khaos_kind") == "fusfunc":
                for side in f.attributes["khaos_sides"]:
                    assert ".sep." not in side

    def test_fission_mode_collects_only_fission_stats(self):
        result = obfuscate(build_demo_program(), mode=Mode.FISSION)
        assert result.stats.fission.sepfuncs_created > 0
        assert result.stats.fusion.fusfuncs_created == 0

    def test_stats_row_shape(self):
        result = obfuscate(build_demo_program(), mode=Mode.FUFI_ALL)
        row = result.stats.as_row()
        assert set(row) == {"fission_ratio", "avg_bb", "reduction_ratio",
                            "fusion_ratio", "avg_reduced_params",
                            "avg_innocuous_blocks"}


class TestToolchain:
    def test_obfuscator_for_labels(self):
        for label in ALL_LABELS:
            assert obfuscator_for(label).label.startswith(label.split("-")[0])
        with pytest.raises(KeyError):
            obfuscator_for("unknown")

    def test_build_baseline_and_variant(self):
        workload = find_program("cat")
        baseline = build_baseline(workload.build(), run=True)
        variant = build_obfuscated(workload.build(), obfuscator_for("fufi.ori"),
                                   run=True)
        assert baseline.binary.functions and variant.binary.functions
        assert baseline.execution.observable() == variant.execution.observable()
        assert isinstance(overhead_percent(baseline, variant), float)

    def test_build_all_variants_labels(self):
        workload = find_program("true")
        artifacts = build_all_variants(workload.build, labels=("sub", "fission"))
        assert set(artifacts) == {"baseline", "sub", "fission"}

    def test_khaos_changes_function_set_but_baselines_do_not(self):
        workload = find_program("429.mcf")
        source_names = {f.name for f in workload.build().link().defined_functions()}

        # intra-procedural obfuscation introduces no new function symbols
        sub = build_obfuscated(workload.build(), obfuscator_for("sub"))
        assert set(sub.binary.function_names()) <= source_names

        # Khaos creates sepFuncs / fusFuncs that did not exist before
        khaos = build_obfuscated(workload.build(), obfuscator_for("fufi.all"))
        khaos_names = set(khaos.binary.function_names())
        assert any(name.startswith("khaos.fuse.") or ".sep." in name
                   for name in khaos_names)

    def test_workload_semantics_across_all_modes(self):
        workload = find_program("462.libquantum")
        baseline = build_baseline(workload.build(), run=True)
        for mode in Mode.ALL:
            variant = build_obfuscated(workload.build(), KhaosVariant(mode),
                                       run=True)
            assert (variant.execution.observable()
                    == baseline.execution.observable()), mode
