"""Tests for the IR type system, compatibility and parameter compression."""

import pytest

from repro.ir import (ArrayType, FloatType, FunctionType, IntType, PointerType,
                      compatible_type, compress_parameter_lists, F32, F64, I8,
                      I32, I64, VOID)


class TestTypeBasics:
    def test_int_widths(self):
        for bits in (1, 8, 16, 32, 64):
            assert IntType(bits).bits == bits

    def test_unsupported_int_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(13)

    def test_unsupported_float_width_rejected(self):
        with pytest.raises(ValueError):
            FloatType(16)

    def test_equality_is_structural(self):
        assert IntType(64) == I64
        assert PointerType(I32) == PointerType(IntType(32))
        assert PointerType(I32) != PointerType(I64)
        assert FunctionType(I64, [I32]) == FunctionType(I64, [I32])

    def test_str_forms(self):
        assert str(I64) == "i64"
        assert str(F32) == "f32"
        assert str(PointerType(I8)) == "i8*"
        assert str(ArrayType(I64, 4)) == "[4 x i64]"
        assert str(VOID) == "void"
        assert "..." in str(FunctionType(VOID, [I64], variadic=True))

    def test_predicates(self):
        assert I64.is_integer and not I64.is_float
        assert F64.is_float and not F64.is_pointer
        assert PointerType(I64).is_pointer
        assert VOID.is_void
        assert FunctionType(VOID, []).is_function

    def test_size_in_slots(self):
        assert I64.size_in_slots() == 1
        assert VOID.size_in_slots() == 0
        assert ArrayType(I64, 5).size_in_slots() == 5


class TestIntWrapping:
    def test_wrap_positive_overflow(self):
        assert IntType(8).wrap(130) == -126

    def test_wrap_negative(self):
        assert IntType(8).wrap(-129) == 127

    def test_wrap_identity_in_range(self):
        assert IntType(64).wrap(12345) == 12345

    def test_wrap_i1(self):
        assert IntType(1).wrap(3) == 1
        assert IntType(1).wrap(2) == 0

    def test_min_max(self):
        assert IntType(8).min_value == -128
        assert IntType(8).max_value == 127


class TestCompatibility:
    def test_identical_types(self):
        assert compatible_type(I64, I64) == I64

    def test_integer_widening(self):
        assert compatible_type(I8, I64) == I64
        assert compatible_type(I64, I32) == I64

    def test_float_widening(self):
        assert compatible_type(F32, F64) == F64

    def test_void_merges_with_anything(self):
        assert compatible_type(VOID, I64) == I64
        assert compatible_type(F64, VOID) == F64

    def test_pointers_merge_to_generic(self):
        merged = compatible_type(PointerType(I64), PointerType(F64))
        assert merged == PointerType(I8)

    def test_int_float_incompatible(self):
        assert compatible_type(I64, F64) is None
        assert compatible_type(F32, I8) is None

    def test_pointer_int_incompatible(self):
        assert compatible_type(PointerType(I64), I64) is None


class TestParameterCompression:
    def test_identical_lists_fully_compress(self):
        merged, a_idx, b_idx = compress_parameter_lists([I64, I64], [I64, I64])
        assert merged == (I64, I64)
        assert a_idx == (0, 1)
        assert b_idx == (0, 1)

    def test_paper_example_short_and_float_vs_int(self):
        # bar(short a, float b) + foo(int m) -> (int x, float b)
        merged, a_idx, b_idx = compress_parameter_lists(
            [IntType(16), F32], [I32])
        assert merged == (I32, F32)
        assert a_idx == (0, 1)
        assert b_idx == (0,)

    def test_incompatible_types_get_fresh_slots(self):
        merged, a_idx, b_idx = compress_parameter_lists([I64], [F64])
        assert merged == (I64, F64)
        assert b_idx == (1,)

    def test_each_slot_claimed_at_most_once(self):
        merged, a_idx, b_idx = compress_parameter_lists([I64], [I64, I64])
        assert merged == (I64, I64)
        assert b_idx == (0, 1)

    def test_empty_lists(self):
        merged, a_idx, b_idx = compress_parameter_lists([], [])
        assert merged == ()
        assert a_idx == ()
        assert b_idx == ()

    def test_worst_case_is_concatenation(self):
        merged, _, _ = compress_parameter_lists([I64, I64], [F64, F64])
        assert len(merged) == 4
