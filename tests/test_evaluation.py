"""Tests for the evaluation drivers (small configurations of each experiment)."""

import pytest

from repro.evaluation import (EXPERIMENTS, experiment_names, figure9,
                              format_table, matrix_table, measure_escape,
                              measure_internals, measure_opcode_distance,
                              measure_overhead, measure_precision,
                              overhead_table, run_experiment)
from repro.diffing import Asm2Vec, BinDiff
from repro.workloads import embedded_programs, find_program


@pytest.fixture(scope="module")
def tiny_workloads():
    return [find_program("true"), find_program("cat")]


class TestOverheadExperiment:
    def test_measure_overhead_rows(self, tiny_workloads):
        report = measure_overhead(tiny_workloads, labels=("fission", "fufi.ori"))
        assert len(report.rows) == 4
        assert set(report.labels()) == {"fission", "fufi.ori"}
        for row in report.rows:
            assert row.baseline_cycles > 0 and row.cycles > 0
        assert isinstance(report.geomean("fission"), float)
        text = overhead_table(report, title="Figure 6 (tiny)")
        assert "GEOMEAN" in text

    def test_flattening_costs_more_than_substitution(self, tiny_workloads):
        report = measure_overhead(tiny_workloads, labels=("sub", "fla"))
        assert report.geomean("fla") >= report.geomean("sub")


class TestPrecisionExperiment:
    def test_measure_precision_matrix(self, tiny_workloads):
        report = measure_precision(tiny_workloads, labels=("sub", "fufi.all"),
                                   differs=[BinDiff(), Asm2Vec()])
        matrix = report.matrix()
        assert set(matrix) == {"BinDiff", "Asm2Vec"}
        for tool_row in matrix.values():
            for value in tool_row.values():
                assert 0.0 <= value <= 1.0
        text = matrix_table(matrix, row_title="tool")
        assert "BinDiff" in text

    def test_khaos_never_easier_to_diff_than_baseline_for_bindiff(self, tiny_workloads):
        report = measure_precision(tiny_workloads, labels=("sub", "fufi.all"),
                                   differs=[BinDiff()])
        assert (report.average("BinDiff", "fufi.all")
                <= report.average("BinDiff", "sub") + 1e-9)


class TestEscapeExperiment:
    def test_escape_rows_only_for_vulnerable_programs(self, tiny_workloads):
        report = measure_escape(tiny_workloads, labels=("sub",))
        assert report.rows == []  # coreutils programs carry no CVEs

    def test_escape_on_embedded_program(self):
        workload = embedded_programs()[0]
        report = measure_escape([workload], labels=("fufi.all",),
                                differs=[Asm2Vec()])
        assert report.rows
        ratio = report.escape_ratio("Asm2Vec", "fufi.all", 1)
        assert 0.0 <= ratio <= 1.0
        assert report.escape_ratio("Asm2Vec", "fufi.all", 50) <= ratio


class TestOtherExperiments:
    def test_opcode_distance_report(self, tiny_workloads):
        report = measure_opcode_distance(tiny_workloads[:1],
                                         labels=("sub", "fufi.all"))
        per_program = report.distances[tiny_workloads[0].name]
        assert set(per_program) == {"sub", "fufi.all"}
        assert max(per_program.values()) == pytest.approx(1.0)

    def test_internals_table(self, tiny_workloads):
        report = measure_internals({"CoreUtils": tiny_workloads})
        row = report.rows["CoreUtils"]
        assert row.fusion_ratio > 0
        assert row.fission_ratio >= 0
        table = report.as_table()
        assert "Fission Ratio" in table["CoreUtils"]

    def test_figure9_structure(self):
        report = figure9(limit=1, tuner_iterations=1)
        protections = {row.protection for row in report.rows}
        assert protections == {"bintuner", "khaos"}
        assert {row.opt_level for row in report.rows} == {0, 1, 2, 3}
        for row in report.rows:
            assert 0.0 <= row.similarity <= 1.0


class TestRegistry:
    def test_registry_covers_every_table_and_figure(self):
        assert set(experiment_names()) == {
            "figure6", "figure7", "figure8", "figure9", "figure10", "figure11",
            "table1", "table2", "table3"}
        for experiment in EXPERIMENTS.values():
            assert experiment.description

    def test_run_experiment_table1_and_table3(self):
        table1 = run_experiment("table1")
        assert len(table1) == 5
        table3 = run_experiment("table3")
        assert len(table3) == 5
        assert any("CVE-2021-3449" in cve
                   for vulns in table3.values()
                   for _, cves in vulns for cve in cves)

    def test_run_experiment_unknown(self):
        with pytest.raises(KeyError):
            run_experiment("figure99")

    def test_format_table_renders(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3]], title="T")
        assert "T" in text and "2.500" in text
