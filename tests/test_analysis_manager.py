"""Tests for the caching AnalysisManager and its invalidation semantics."""

import pytest

from repro.analysis import (AnalysisManager, BlockFrequency, ControlFlowGraph,
                            DefUse, DominatorTree, LoopInfo, PRESERVE_ALL,
                            StaleAnalysisError)
from repro.ir import IRBuilder, Module, Program, create_function, I64
from repro.opt import DeadCodeElimination, PassManager, SimplifyCFG
from repro.opt.pass_manager import FunctionPass
from repro.vm import run_program
from repro.workloads.suites import (coreutils_programs, embedded_programs,
                                    spec2006_programs, spec2017_programs)


def diamond_function():
    """A function with branching control flow, a loop-free diamond."""
    module = Module("m")
    f = create_function(module, "main", I64, [I64])
    b = IRBuilder(f.entry_block)
    then = f.add_block("then")
    other = f.add_block("other")
    join = f.add_block("join")
    b.cond_br(b.icmp("slt", f.args[0], 10), then, other)
    IRBuilder(then).br(join)
    IRBuilder(other).br(join)
    IRBuilder(join).ret(7)
    return module, f


class TestCaching:
    def test_repeated_fetches_hit_the_cache(self):
        _, f = diamond_function()
        am = AnalysisManager()
        first = am.cfg(f)
        assert am.cfg(f) is first
        assert am.domtree(f) is am.domtree(f)
        assert am.defuse(f) is am.defuse(f)
        assert am.loops(f) is am.loops(f)
        assert am.block_frequency(f) is am.block_frequency(f)
        assert am.hits > 0

    def test_derived_analyses_share_the_cached_cfg(self):
        _, f = diamond_function()
        am = AnalysisManager()
        cfg = am.cfg(f)
        assert am.domtree(f).cfg is cfg
        assert am.loops(f).cfg is cfg
        assert am.block_frequency(f).cfg is cfg

    def test_invalidate_drops_everything(self):
        _, f = diamond_function()
        am = AnalysisManager()
        cfg = am.cfg(f)
        defuse = am.defuse(f)
        am.invalidate(f)
        assert am.cfg(f) is not cfg
        assert am.defuse(f) is not defuse

    def test_invalidate_preserve_keeps_named_analyses(self):
        _, f = diamond_function()
        am = AnalysisManager()
        cfg = am.cfg(f)
        defuse = am.defuse(f)
        am.invalidate(f, preserve=("cfg",))
        assert am.cfg(f) is cfg
        assert am.defuse(f) is not defuse

    def test_preserve_all_keeps_everything(self):
        _, f = diamond_function()
        am = AnalysisManager()
        cfg = am.cfg(f)
        defuse = am.defuse(f)
        am.invalidate(f, preserve=PRESERVE_ALL)
        assert am.cfg(f) is cfg
        assert am.defuse(f) is defuse

    def test_callgraph_cached_per_module_and_invalidated(self):
        module, _ = diamond_function()
        am = AnalysisManager()
        graph = am.callgraph(module)
        assert am.callgraph(module) is graph
        am.invalidate_module(module)
        assert am.callgraph(module) is not graph


class TestStaleDetection:
    def test_mutation_without_invalidation_is_caught(self):
        _, f = diamond_function()
        am = AnalysisManager(verify_invalidation=True)
        am.cfg(f)
        # a "pass" that restructures the CFG but forgets to invalidate
        f.remove_block(f.blocks[-1])
        with pytest.raises(StaleAnalysisError):
            am.cfg(f)

    def test_mutation_with_invalidation_is_fine(self):
        _, f = diamond_function()
        am = AnalysisManager(verify_invalidation=True)
        am.cfg(f)
        f.remove_block(f.blocks[-1])
        am.invalidate(f)
        assert am.cfg(f) is not None

    def test_terminator_rewrite_is_caught(self):
        _, f = diamond_function()
        am = AnalysisManager(verify_invalidation=True)
        am.domtree(f)
        then = f.get_block("then")
        other = f.get_block("other")
        # retarget entry's condbr edge: successors change, block list doesn't
        term = f.entry_block.terminator
        term.true_target = other
        assert then is not other
        with pytest.raises(StaleAnalysisError):
            am.domtree(f)

    def test_stale_pass_class_is_caught_end_to_end(self):
        class ForgetfulPass(FunctionPass):
            name = "forgetful"

            def run_on_function(self, function, analyses=None):
                analyses.cfg(function)
                function.remove_block(function.blocks[-1])
                return False  # lies: nothing gets invalidated

        module, f = diamond_function()
        program = Program("p", [module])
        am = AnalysisManager(verify_invalidation=True)
        manager = PassManager([ForgetfulPass()], analyses=am)
        manager.run(program)
        with pytest.raises(StaleAnalysisError):
            am.cfg(f)

    def test_lying_preserve_all_pass_is_caught(self):
        class LyingPass(FunctionPass):
            name = "lying"
            preserves = PRESERVE_ALL  # lies: it restructures the CFG

            def run_on_function(self, function, analyses=None):
                analyses.cfg(function)
                function.remove_block(function.blocks[-1])
                return True

        module, f = diamond_function()
        program = Program("p", [module])
        am = AnalysisManager(verify_invalidation=True)
        manager = PassManager([LyingPass()], analyses=am)
        manager.run(program)
        with pytest.raises(StaleAnalysisError):
            am.cfg(f)


class TestPassIntegration:
    def test_dce_preserves_the_cfg_object(self):
        module = Module("m")
        f = create_function(module, "main", I64, [])
        b = IRBuilder(f.entry_block)
        b.add(1, 2)  # dead
        b.ret(7)
        program = Program("p", [module])
        am = AnalysisManager(verify_invalidation=True)
        cfg = am.cfg(f)
        assert DeadCodeElimination().run(program, am)
        # DCE declares it preserves the CFG: same object, and not stale
        assert am.cfg(f) is cfg

    def test_simplify_cfg_invalidates(self):
        module = Module("m")
        f = create_function(module, "main", I64, [])
        b = IRBuilder(f.entry_block)
        middle = f.add_block("middle")
        b.br(middle)
        IRBuilder(middle).ret(5)
        program = Program("p", [module])
        am = AnalysisManager(verify_invalidation=True)
        cfg = am.cfg(f)
        assert SimplifyCFG().run(program, am)
        assert am.cfg(f) is not cfg
        assert run_program(program).exit_value == 5


def _sample_workloads():
    return (spec2006_programs()[:3] + spec2017_programs()[:3]
            + coreutils_programs()[:6] + embedded_programs()[:2])


class TestDifferential:
    """Cached analyses must agree with freshly-constructed ones on every
    workload function."""

    @pytest.mark.parametrize("workload", _sample_workloads(),
                             ids=lambda wp: wp.name)
    def test_cached_matches_fresh(self, workload):
        program = workload.build()
        am = AnalysisManager()
        for module in program.modules:
            for function in module.functions.values():
                if function.is_declaration:
                    continue
                # warm the cache, then fetch again (hits) and compare with
                # a from-scratch construction
                cached_cfg = am.cfg(function)
                cached_dom = am.domtree(function)
                cached_loops = am.loops(function)
                cached_freq = am.block_frequency(function)
                cached_defuse = am.defuse(function)

                fresh_cfg = ControlFlowGraph(function)
                assert cached_cfg.successors == fresh_cfg.successors
                assert cached_cfg.predecessors == fresh_cfg.predecessors
                assert (cached_cfg.reverse_post_order()
                        == fresh_cfg.reverse_post_order())

                fresh_dom = DominatorTree(function)
                assert cached_dom.idom == fresh_dom.idom

                fresh_loops = LoopInfo(function)
                assert ({l.header for l in cached_loops.loops}
                        == {l.header for l in fresh_loops.loops})
                for block in function.blocks:
                    assert (cached_loops.loop_depth(block)
                            == fresh_loops.loop_depth(block))

                fresh_freq = BlockFrequency(function)
                for block in function.blocks:
                    assert cached_freq.get(block) == fresh_freq.get(block)

                fresh_defuse = DefUse(function)
                for inst in function.instructions():
                    assert (cached_defuse.uses_of(inst)
                            == fresh_defuse.uses_of(inst))
