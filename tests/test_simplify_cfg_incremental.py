"""Incremental SimplifyCFG vs the legacy fixed-point reference.

The incremental implementation maintains local successor/predecessor maps and
must reach exactly the same normal form as the legacy implementation, which
re-fetched the CFG after every single rewrite.  The differential test runs
both over every obfuscated workload variant and compares the printed IR
block for block.
"""

import pytest

from repro.analysis.manager import AnalysisManager
from repro.ir import (IRBuilder, Module, Program, assert_valid,
                      create_function, module_to_str, I64)
from repro.opt import PassManager, SimplifyCFG
from repro.toolchain import obfuscator_for
from repro.vm import run_program
from repro.workloads.suites import (coreutils_programs, spec2006_programs,
                                    spec2017_programs)


def make_program(module):
    return Program("p", [module])


def _printed(program):
    return "\n".join(module_to_str(m) for m in program.modules)


DIFFERENTIAL_WORKLOADS = (spec2006_programs()[:2] + spec2017_programs()[:1]
                          + coreutils_programs()[:1])
DIFFERENTIAL_LABELS = ("fission", "fusion", "fufi.sep", "fufi.ori",
                       "fufi.all", "bog", "fla-10")


class TestDifferential:
    @pytest.mark.parametrize("workload", DIFFERENTIAL_WORKLOADS,
                             ids=lambda wp: wp.name)
    @pytest.mark.parametrize("label", DIFFERENTIAL_LABELS)
    def test_block_for_block_identical_on_obfuscated_workloads(
            self, workload, label):
        obfuscated = obfuscator_for(label).obfuscate(workload.build()).program
        legacy_copy = obfuscated.clone()
        incremental_copy = obfuscated.clone()

        legacy_changed = SimplifyCFG(legacy=True).run(legacy_copy)
        incremental_changed = SimplifyCFG(legacy=False).run(incremental_copy)

        assert legacy_changed == incremental_changed
        assert _printed(legacy_copy) == _printed(incremental_copy)
        assert_valid(incremental_copy)

    def test_differential_on_raw_workloads(self):
        for workload in DIFFERENTIAL_WORKLOADS:
            program = workload.build()
            legacy_copy, incremental_copy = program.clone(), program.clone()
            assert (SimplifyCFG(legacy=True).run(legacy_copy)
                    == SimplifyCFG(legacy=False).run(incremental_copy))
            assert _printed(legacy_copy) == _printed(incremental_copy)


class TestIncrementalShapes:
    def test_merges_whole_chain(self):
        module = Module("m")
        f = create_function(module, "main", I64, [])
        b = IRBuilder(f.entry_block)
        first = f.add_block("first")
        second = f.add_block("second")
        b.br(first)
        bb = IRBuilder(first)
        v = bb.add(1, 2)
        bb.br(second)
        IRBuilder(second).ret(v)
        SimplifyCFG().run(make_program(module))
        assert f.block_count() == 1
        assert run_program(make_program(module)).exit_value == 3

    def test_forwarding_chain_collapses(self):
        module = Module("m")
        f = create_function(module, "main", I64, [I64])
        b = IRBuilder(f.entry_block)
        hop1 = f.add_block("hop1")
        hop2 = f.add_block("hop2")
        left = f.add_block("left")
        b.cond_br(b.icmp("slt", f.args[0], 0), left, hop1)
        IRBuilder(hop1).br(hop2)
        done = f.add_block("done")
        IRBuilder(hop2).br(done)
        IRBuilder(left).ret(1)
        IRBuilder(done).ret(2)
        legacy = make_program(module).clone()
        SimplifyCFG().run(make_program(module))
        SimplifyCFG(legacy=True).run(legacy)
        # merges take priority: hop1 absorbs hop2 then done, ending in `ret 2`
        assert {blk.name for blk in f.blocks} == {"entry", "left", "hop1"}
        assert f.get_block("hop1").instructions[-1].opcode == "ret"
        assert ({blk.name for blk in legacy.modules[0].get_function("main").blocks}
                == {blk.name for blk in f.blocks})
        assert_valid(f)

    def test_removes_unreachable_cycle(self):
        module = Module("m")
        f = create_function(module, "main", I64, [])
        IRBuilder(f.entry_block).ret(1)
        dead_a = f.add_block("dead_a")
        dead_b = f.add_block("dead_b")
        IRBuilder(dead_a).br(dead_b)
        IRBuilder(dead_b).br(dead_a)
        assert SimplifyCFG().run(make_program(module))
        assert f.block_count() == 1

    def test_condbr_with_coinciding_targets_not_merged(self):
        # a condbr whose two edges reach the same block counts as two
        # successors (multiplicity), so no straight-line merge may fire
        module = Module("m")
        f = create_function(module, "main", I64, [I64])
        b = IRBuilder(f.entry_block)
        join = f.add_block("join")
        b.cond_br(b.icmp("slt", f.args[0], 0), join, join)
        jb = IRBuilder(join)
        jb.ret(7)
        legacy = make_program(module).clone()
        assert (SimplifyCFG(legacy=False).run(make_program(module))
                == SimplifyCFG(legacy=True).run(legacy))
        assert f.block_count() == 2

    def test_entry_forwarding_block_stays(self):
        module = Module("m")
        f = create_function(module, "main", I64, [])
        b = IRBuilder(f.entry_block)
        target = f.add_block("target")
        other = f.add_block("other")
        b.br(target)
        tb = IRBuilder(target)
        tb.cond_br(tb.icmp("eq", tb.add(1, 1), 2), other, target)
        IRBuilder(other).ret(0)
        SimplifyCFG().run(make_program(module))
        # entry merged forward is fine, but the function stays valid and
        # behaviour is preserved
        assert_valid(f)
        assert run_program(make_program(module)).exit_value == 0

    def test_self_loop_forwarding_block_untouched(self):
        module = Module("m")
        f = create_function(module, "main", I64, [I64])
        b = IRBuilder(f.entry_block)
        spin = f.add_block("spin")
        out = f.add_block("out")
        b.cond_br(b.icmp("slt", f.args[0], 0), spin, out)
        IRBuilder(spin).br(spin)
        IRBuilder(out).ret(0)
        SimplifyCFG().run(make_program(module))
        assert {blk.name for blk in f.blocks} >= {"spin", "out"}


class TestFlagAndDriver:
    def test_legacy_flag_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMPLIFY_CFG", "legacy")
        assert SimplifyCFG().legacy is True
        monkeypatch.delenv("REPRO_SIMPLIFY_CFG")
        assert SimplifyCFG().legacy is False

    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMPLIFY_CFG", "legacy")
        assert SimplifyCFG(legacy=False).legacy is False

    @pytest.mark.parametrize("legacy", (False, True))
    def test_verify_invalidation_clean(self, legacy):
        """Neither path may mutate a function without invalidating analyses."""
        workload = spec2006_programs()[0]
        program = workload.build().link()
        analyses = AnalysisManager(verify_invalidation=True)
        function = program.modules[0].get_function("main")
        analyses.cfg(function)  # prime the cache
        manager = PassManager([SimplifyCFG(legacy=legacy)], analyses=analyses)
        manager.run(program)
        # fetching again after the pass must not raise StaleAnalysisError
        for f in program.modules[0].defined_functions():
            analyses.cfg(f)

    def test_preserves_behaviour_on_obfuscated_program(self):
        workload = coreutils_programs()[0]
        obfuscated = obfuscator_for("fufi.ori").obfuscate(
            workload.build()).program
        before = run_program(obfuscated.clone()).observable()
        changed = SimplifyCFG().run(obfuscated)
        assert run_program(obfuscated).observable() == before
        assert isinstance(changed, bool)
