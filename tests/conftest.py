"""Shared fixtures: small hand-built programs and a fresh shared store."""

from __future__ import annotations

import pytest

from repro.ir import (FunctionType, IRBuilder, Module, PointerType, Program,
                      assert_valid, create_function, I64)


@pytest.fixture
def tmp_store(tmp_path, monkeypatch):
    """A fresh shared-store root, exported and cleaned up.

    Yields an empty directory path with ``REPRO_STORE_DIR`` pointing at it
    and the deprecated ``REPRO_VARIANT_CACHE_DIR`` cleared, so executor
    workers (and the in-process serial path) attach to exactly this tree.
    The process-local worker cache is reset on both sides of the test —
    store-backed scenarios must never leak an attached store into each
    other; ``monkeypatch`` restores the environment afterwards.
    """
    from repro.evaluation.executor import reset_worker_cache
    root = str(tmp_path / "store")
    monkeypatch.setenv("REPRO_STORE_DIR", root)
    monkeypatch.delenv("REPRO_VARIANT_CACHE_DIR", raising=False)
    # a leaked server URL would silently win over the local tree
    monkeypatch.delenv("REPRO_STORE_URL", raising=False)
    monkeypatch.delenv("REPRO_STORE_CACHE_DIR", raising=False)
    reset_worker_cache()
    yield root
    reset_worker_cache()


def build_demo_program() -> Program:
    """A small but representative program.

    It contains a loop-and-branch function (fission material), two functions
    with compatible signatures (fusion material), an indirect call through a
    function pointer (tagged-pointer handling) and a ``main`` that prints
    observable values through ``putint``.
    """
    module = Module("demo")
    putint = module.declare_function("putint", FunctionType(I64, [I64]))

    classify = create_function(module, "classify", I64, [I64], ["x"])
    b = IRBuilder(classify.entry_block)
    acc = b.alloca(I64, name="acc")
    b.store(0, acc)
    negative = classify.add_block("negative")
    positive = classify.add_block("positive")
    loop = classify.add_block("loop")
    body = classify.add_block("body")
    done = classify.add_block("done")
    b.cond_br(b.icmp("slt", classify.args[0], 0), negative, positive)
    b.position_at_end(negative)
    b.store(b.sub(0, classify.args[0]), acc)
    b.br(done)
    b.position_at_end(positive)
    index = b.alloca(I64, name="i")
    b.store(0, index)
    b.br(loop)
    b.position_at_end(loop)
    current = b.load(index)
    b.cond_br(b.icmp("slt", current, classify.args[0]), body, done)
    b.position_at_end(body)
    b.store(b.add(b.load(acc), current), acc)
    b.store(b.add(current, 1), index)
    b.br(loop)
    b.position_at_end(done)
    b.ret(b.load(acc))

    scale = create_function(module, "scale", I64, [I64, I64], ["a", "b"])
    bs = IRBuilder(scale.entry_block)
    bs.ret(bs.add(bs.mul(scale.args[0], 3), scale.args[1]))

    mix = create_function(module, "mix", I64, [I64, I64], ["a", "b"])
    bm = IRBuilder(mix.entry_block)
    bm.ret(bm.xor(bm.add(mix.args[0], mix.args[1]), 7))

    pointer_type = PointerType(FunctionType(I64, [I64, I64]))
    select_op = create_function(module, "select_op", I64, [I64, I64, I64],
                                ["which", "a", "b"])
    bo = IRBuilder(select_op.entry_block)
    slot = bo.alloca(pointer_type, name="fp")
    use_scale = select_op.add_block("use_scale")
    use_mix = select_op.add_block("use_mix")
    join = select_op.add_block("join")
    bo.cond_br(bo.icmp("eq", select_op.args[0], 0), use_scale, use_mix)
    bo.position_at_end(use_scale)
    bo.store(scale, slot)
    bo.br(join)
    bo.position_at_end(use_mix)
    bo.store(mix, slot)
    bo.br(join)
    bo.position_at_end(join)
    handler = bo.load(slot)
    bo.ret(bo.call(handler, [select_op.args[1], select_op.args[2]]))

    main = create_function(module, "main", I64, [])
    bmain = IRBuilder(main.entry_block)
    for value in (-5, 0, 7):
        bmain.call(putint, [bmain.call(classify, [value])])
    bmain.call(putint, [bmain.call(scale, [4, 9])])
    bmain.call(putint, [bmain.call(mix, [4, 9])])
    bmain.call(putint, [bmain.call(select_op, [0, 2, 3])])
    bmain.call(putint, [bmain.call(select_op, [1, 2, 3])])
    bmain.ret(0)

    assert_valid(module)
    return Program("demo", [module])


@pytest.fixture
def demo_program() -> Program:
    return build_demo_program()


@pytest.fixture
def demo_module(demo_program) -> Module:
    return demo_program.modules[0]
