"""GC safety: the sweep never collects journal-reachable state.

The contracts this file pins down:

* on a freshly journaled tree, ``collect`` sweeps **nothing** — every
  object a warm rerun would read is derived live from the run journals;
* unreferenced objects are swept exactly, and a warm rerun after the
  sweep still re-scores zero units (the ISSUE's acceptance);
* ``--dry-run`` reports the same sweep without deleting anything;
* the grace window and ``--keep-generations`` each independently protect
  otherwise-collectable objects;
* an unreadable or unrecognised journaled shard degrades the sweep to
  conservative mode (only unreferenced ``shard`` objects go);
* the CLI refuses non-store trees with exit status 2.
"""

import json
import os
import sys

import pytest

from repro.evaluation.checkpoint import RUNS_DIR, ShardRunStats
from repro.evaluation.diff_sharding import measure_precision_sharded
from repro.evaluation.executor import reset_worker_cache
from repro.store import ArtifactStore, store_digest
from repro.store.artifact_store import KIND_SHARD, KIND_VARIANT
from repro.store.backend import LocalBackend
from repro.workloads.suites import spec2006_programs

SCRIPTS = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "scripts")
sys.path.insert(0, SCRIPTS)

import gc_store  # noqa: E402

WORKLOADS = spec2006_programs()[:1]
LABELS = ("fission",)


@pytest.fixture
def populated(tmp_store):
    """A store tree after one cold journaled figure-8 run."""
    stats = ShardRunStats()
    report = measure_precision_sharded(WORKLOADS, labels=LABELS, jobs=1,
                                       run_stats=stats)
    assert stats.executed == stats.planned > 0
    reset_worker_cache()
    return tmp_store, report


def plant_garbage(root, count=4):
    """Objects no journal references — GC's only legitimate prey."""
    store = ArtifactStore(root)
    refs = []
    for i in range(count):
        key = ("garbage", i)
        store.put(KIND_VARIANT, key, {"junk": i})
        refs.append((KIND_VARIANT, store_digest(KIND_VARIANT, key)))
    return refs


def object_exists(root, kind, digest):
    return os.path.exists(LocalBackend(root).object_path(kind, digest))


class TestSweepSafety:
    def test_clean_tree_sweeps_nothing(self, populated):
        root, _ = populated
        report = gc_store.collect(root, grace=0)
        assert report["counts"]["swept"] == 0
        assert not report["conservative"]
        assert report["counts"]["live"] > 0

    def test_sweeps_exactly_the_unreferenced(self, populated):
        root, cold_report = populated
        garbage = plant_garbage(root)
        report = gc_store.collect(root, grace=0)
        assert report["counts"]["swept"] == len(garbage)
        assert report["swept_by_kind"] == {KIND_VARIANT: len(garbage)}
        assert report["bytes_reclaimed"] > 0
        assert report["counts"]["ledger_dropped"] == len(garbage)
        for kind, digest in garbage:
            assert not object_exists(root, kind, digest)

        # the acceptance: a warm rerun over the swept tree rebuilds nothing
        warm_stats = ShardRunStats()
        warm = measure_precision_sharded(WORKLOADS, labels=LABELS, jobs=1,
                                         run_stats=warm_stats)
        assert warm.rows == cold_report.rows
        assert warm_stats.executed == 0
        assert warm_stats.resumed == warm_stats.planned

    def test_idempotent(self, populated):
        root, _ = populated
        plant_garbage(root)
        assert gc_store.collect(root, grace=0)["counts"]["swept"] > 0
        again = gc_store.collect(root, grace=0)
        assert again["counts"]["swept"] == 0

    def test_dry_run_deletes_nothing(self, populated):
        root, _ = populated
        garbage = plant_garbage(root)
        report = gc_store.collect(root, dry_run=True, grace=0)
        assert report["dry_run"] is True
        assert report["counts"]["swept"] == len(garbage)
        assert report["counts"]["ledger_dropped"] == 0
        for kind, digest in garbage:
            assert object_exists(root, kind, digest)
        # and the real sweep afterwards agrees with the rehearsal
        real = gc_store.collect(root, grace=0)
        assert real["counts"]["swept"] == len(garbage)


class TestProtectionWindows:
    def test_grace_protects_fresh_writes(self, populated):
        root, _ = populated
        garbage = plant_garbage(root)
        report = gc_store.collect(root, grace=gc_store.DEFAULT_GRACE)
        assert report["counts"]["swept"] == 0
        assert report["counts"]["kept_grace"] >= len(garbage)
        for kind, digest in garbage:
            assert object_exists(root, kind, digest)

    def test_keep_generations_protects_ledgered_writes(self, populated):
        root, _ = populated
        garbage = plant_garbage(root)
        report = gc_store.collect(root, grace=0, keep_generations=1)
        assert report["counts"]["swept"] == 0
        assert report["counts"]["kept_generation"] >= len(garbage)
        for kind, digest in garbage:
            assert object_exists(root, kind, digest)


class TestConservativeMode:
    def _journaled_shard_digests(self, root):
        digests = set()
        runs_dir = os.path.join(root, RUNS_DIR)
        for name in os.listdir(runs_dir):
            with open(os.path.join(runs_dir, name), encoding="utf-8") as fh:
                for line in fh:
                    digests.add(json.loads(line)["digest"])
        return digests

    def test_corrupt_journaled_shard_degrades_to_conservative(
            self, populated):
        root, _ = populated
        digest = sorted(self._journaled_shard_digests(root))[0]
        path = LocalBackend(root).object_path(KIND_SHARD, digest)
        with open(path, "wb") as fh:
            fh.write(b"\x80garbage that does not unpickle")
        garbage = plant_garbage(root)

        report = gc_store.collect(root, grace=0)
        assert report["conservative"] is True
        assert report["conservative_causes"]
        # non-shard garbage survives a conservative sweep...
        assert report["counts"]["kept_conservative"] >= len(garbage)
        for kind, digest in garbage:
            assert object_exists(root, kind, digest)

    def test_unknown_shard_key_degrades_to_conservative(self, populated):
        root, _ = populated
        # a journaled shard written by a newer pipeline: unknown key shape
        store = ArtifactStore(root)
        key = ("mystery-shard", 1)
        store.put(KIND_SHARD, key, {"payload": "?"})
        digest = store_digest(KIND_SHARD, key)
        journal = os.path.join(root, RUNS_DIR, "mystery.jsonl")
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"digest": digest}) + "\n")

        report = gc_store.collect(root, grace=0)
        assert report["conservative"] is True
        assert any("unknown shard key" in cause
                   for cause in report["conservative_causes"])
        # the journaled mystery shard itself is a root: never swept
        assert object_exists(root, KIND_SHARD, digest)

    def test_unreferenced_shards_still_swept_conservatively(self, populated):
        root, _ = populated
        store = ArtifactStore(root)
        store.put(KIND_SHARD, ("orphan-shard", 9), {"payload": "?"})
        orphan = store_digest(KIND_SHARD, ("orphan-shard", 9))
        digest = sorted(self._journaled_shard_digests(root))[0]
        path = LocalBackend(root).object_path(KIND_SHARD, digest)
        with open(path, "wb") as fh:
            fh.write(b"not a pickle")

        report = gc_store.collect(root, grace=0)
        assert report["conservative"] is True
        assert report["swept_by_kind"].get(KIND_SHARD, 0) >= 1
        assert not object_exists(root, KIND_SHARD, orphan)


class TestCli:
    def test_json_report(self, populated, capsys):
        root, _ = populated
        plant_garbage(root, count=2)
        assert gc_store.main([root, "--dry-run", "--grace", "0",
                              "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["counts"]["swept"] == 2

    def test_human_report(self, populated, capsys):
        root, _ = populated
        assert gc_store.main([root, "--grace", "0"]) == 0
        out = capsys.readouterr().out
        assert "swept: 0 objects" in out

    def test_refuses_non_store_tree(self, tmp_path, capsys):
        empty = tmp_path / "not-a-store"
        empty.mkdir()
        assert gc_store.main([str(empty)]) == 2
        assert "no generation log" in capsys.readouterr().err
        assert gc_store.main([str(tmp_path / "missing")]) == 2
