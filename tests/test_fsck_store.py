"""Offline store verification: ``scripts/fsck_store.py`` scan and repair.

The runtime read path heals one object at a time; fsck walks the whole tree.
These tests pin down the triage rules: *damage* (corrupt objects, renamed
digests, stale temps) fails the check until repaired into quarantine,
*drift* (ledger/journal entries out of sync with the objects) is advisory
and never fails, and an unusable manifest is unrepairable (exit 1).
"""

import json
import os
import pickle
import subprocess
import sys

import pytest

from repro.evaluation.checkpoint import RUNS_DIR
from repro.store import (KIND_BINARY, KIND_VARIANT, QUARANTINE_DIR,
                         ArtifactStore, GenerationLog, store_digest)

SCRIPTS = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "scripts")
sys.path.insert(0, SCRIPTS)

from fsck_store import fsck, main  # noqa: E402


@pytest.fixture
def tree(tmp_path):
    root = str(tmp_path / "store")
    store = ArtifactStore.attach(root)
    store.put(KIND_VARIANT, ("a",), 1)
    store.put(KIND_VARIANT, ("b",), 2)
    store.put(KIND_BINARY, ("c",), b"\x00\x01")
    return root


def _object_path(root, kind, key):
    return ArtifactStore.attach(root).object_path(
        kind, store_digest(kind, key))


class TestScan:
    def test_clean_tree_is_clean(self, tree):
        report = fsck(tree)
        assert report["clean"]
        assert report["counts"]["objects_scanned"] == 3
        assert report["counts"]["objects_ok"] == 3
        assert report["findings"] == []

    def test_corrupt_object_is_damage(self, tree):
        with open(_object_path(tree, KIND_VARIANT, ("a",)), "wb") as fh:
            fh.write(b"garbage")
        report = fsck(tree)
        assert not report["clean"]
        assert [f["code"] for f in report["findings"]] == ["corrupt_object"]

    def test_envelope_mismatch_is_damage(self, tree):
        path = _object_path(tree, KIND_VARIANT, ("a",))
        with open(path, "rb") as fh:
            envelope = pickle.load(fh)
        envelope["store_schema"] = 99
        with open(path, "wb") as fh:
            pickle.dump(envelope, fh)
        report = fsck(tree)
        assert [f["code"] for f in report["findings"]] == ["envelope_mismatch"]

    def test_renamed_object_is_digest_mismatch(self, tree):
        """A pristine pickle under the wrong name is still corruption."""
        path = _object_path(tree, KIND_VARIANT, ("a",))
        fake = store_digest(KIND_VARIANT, ("elsewhere",))
        target = os.path.join(os.path.dirname(os.path.dirname(path)),
                              fake[:2], f"{fake}.pkl")
        os.makedirs(os.path.dirname(target), exist_ok=True)
        os.rename(path, target)
        codes = sorted(f["code"] for f in fsck(tree)["findings"])
        assert codes == ["digest_mismatch"]

    def test_stale_temp_and_stray_files_reported(self, tree):
        shard_dir = os.path.dirname(_object_path(tree, KIND_VARIANT, ("a",)))
        with open(os.path.join(shard_dir, "x.pkl.tmp.123"), "wb") as fh:
            fh.write(b"partial")
        with open(os.path.join(shard_dir, "notes.txt"), "w") as fh:
            fh.write("hello")
        codes = sorted(f["code"] for f in fsck(tree)["findings"])
        assert codes == ["stale_temp", "stray_file"]

    def test_ledger_drift_is_advisory(self, tree):
        # orphan: ledger entry without an object
        log = GenerationLog.load(tree)
        log.append_entry(tree, "f" * 64, KIND_VARIANT)
        # unledgered: object the ledger never heard of (simulate by
        # deleting the ledger line via rewrite of a reduced map)
        victim = store_digest(KIND_VARIANT, ("b",))
        del log.entries[victim]
        log.entries["f" * 64] = {"kind": KIND_VARIANT, "note": ""}
        log.rewrite_entries(tree)
        report = fsck(tree)
        assert report["clean"]  # drift never fails
        assert report["counts"]["ledger_orphans"] == 1
        assert report["counts"]["unledgered"] == 1

    def test_journaled_digest_without_object_is_advisory(self, tree):
        runs = os.path.join(tree, RUNS_DIR)
        os.makedirs(runs)
        with open(os.path.join(runs, "deadbeef.jsonl"), "w") as fh:
            fh.write(json.dumps({"digest": "a" * 64}) + "\n")
        report = fsck(tree)
        assert report["clean"]
        assert report["counts"]["manifest_orphans"] == 1

    def test_unrepairable_manifest_fails(self, tree):
        with open(GenerationLog.path_for(tree), "w") as fh:
            fh.write("{not json")
        report = fsck(tree, repair=True)
        assert not report["clean"]
        assert report["findings"][0]["code"] == "bad_manifest"
        assert not report["findings"][0]["repairable"]


class TestRepair:
    def test_repair_quarantines_damage_and_reconciles(self, tree):
        victim = _object_path(tree, KIND_VARIANT, ("a",))
        with open(victim, "wb") as fh:
            fh.write(b"garbage")
        report = fsck(tree, repair=True)
        assert report["clean"]
        assert report["counts"]["repaired"] >= 1
        # the damaged object moved into quarantine with an fsck reason
        digest = store_digest(KIND_VARIANT, ("a",))
        moved = os.path.join(tree, QUARANTINE_DIR, KIND_VARIANT,
                             f"{digest}.pkl")
        assert os.path.exists(moved) and not os.path.exists(victim)
        with open(os.path.join(os.path.dirname(moved),
                               f"{digest}.reason.json")) as fh:
            record = json.load(fh)
        assert record["by"] == "fsck_store"
        assert record["cause"] == "corrupt_object"
        # the ledger no longer lists the quarantined object...
        assert digest not in GenerationLog.load(tree).entries
        # ...and a second pass finds nothing left to do
        again = fsck(tree)
        assert again["clean"] and again["counts"]["problems"] == 0

    def test_repair_unlinks_temps_and_strays(self, tree):
        shard_dir = os.path.dirname(_object_path(tree, KIND_VARIANT, ("a",)))
        temp = os.path.join(shard_dir, "x.pkl.tmp.123")
        stray = os.path.join(shard_dir, "notes.txt")
        for path in (temp, stray):
            with open(path, "w") as fh:
                fh.write("junk")
        assert fsck(tree, repair=True)["clean"]
        assert not os.path.exists(temp) and not os.path.exists(stray)

    def test_repair_adopts_unledgered_objects(self, tree):
        log = GenerationLog.load(tree)
        victim = store_digest(KIND_VARIANT, ("b",))
        del log.entries[victim]
        log.rewrite_entries(tree)
        fsck(tree, repair=True)
        entry = GenerationLog.load(tree).entries[victim]
        assert entry["kind"] == KIND_VARIANT
        assert entry["note"] == "adopted by fsck"

    def test_repair_drops_stale_journal_lines(self, tree):
        runs = os.path.join(tree, RUNS_DIR)
        os.makedirs(runs)
        keep = store_digest(KIND_VARIANT, ("a",))
        path = os.path.join(runs, "deadbeef.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"digest": keep}) + "\n")
            fh.write(json.dumps({"digest": "a" * 64}) + "\n")
        fsck(tree, repair=True)
        with open(path) as fh:
            digests = [json.loads(line)["digest"] for line in fh]
        assert digests == [keep]


class TestCli:
    def test_exit_codes(self, tree, capsys):
        assert main([tree]) == 0
        assert "clean" in capsys.readouterr().out
        with open(_object_path(tree, KIND_VARIANT, ("a",)), "wb") as fh:
            fh.write(b"garbage")
        assert main([tree]) == 1
        assert "PROBLEMS FOUND" in capsys.readouterr().out
        assert main(["--repair", tree]) == 0
        assert main([os.path.join(tree, "no-such-dir")]) == 2

    def test_json_output(self, tree, capsys):
        assert main(["--json", tree]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] and report["counts"]["objects_scanned"] == 3

    def test_subprocess_invocation(self, tree):
        """The CI chaos job calls the script as a subprocess; make sure the
        entry point works outside pytest's import context too."""
        script = os.path.join(SCRIPTS, "fsck_store.py")
        env = dict(os.environ, PYTHONPATH=os.path.join(
            os.path.dirname(SCRIPTS), "src"))
        result = subprocess.run([sys.executable, script, tree], env=env,
                                capture_output=True, text=True)
        assert result.returncode == 0, result.stderr
        assert "clean" in result.stdout
