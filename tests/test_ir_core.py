"""Tests for values, instructions, builder, modules, cloning, linking and the verifier."""

import pytest

from repro.ir import (BasicBlock, BinaryOp, Branch, Call, Compare, CondBranch,
                      Constant, Function, FunctionType, IRBuilder, Linkage,
                      Load, Module, Program, Ret, Switch, VerificationError,
                      assert_valid, create_function, instruction_to_str,
                      int_const, module_to_str, verify_function, I64, VOID)
from repro.vm import run_program


class TestValuesAndInstructions:
    def test_constant_wraps_to_type(self):
        c = Constant(I64, 2 ** 64 + 5)
        assert c.value == 5

    def test_binop_requires_known_op(self):
        with pytest.raises(ValueError):
            BinaryOp("bogus", int_const(1), int_const(2))

    def test_compare_produces_i1(self):
        cmp = Compare("slt", int_const(1), int_const(2))
        assert cmp.type.bits == 1

    def test_load_requires_pointer(self):
        with pytest.raises(TypeError):
            Load(int_const(3))

    def test_call_arity_and_result_type(self):
        module = Module("m")
        callee = create_function(module, "f", I64, [I64, I64])
        call = Call(callee, [int_const(1), int_const(2)])
        assert call.type == I64
        assert len(call.args) == 2
        assert call.is_direct

    def test_replace_operand(self):
        a, b = int_const(1), int_const(2)
        op = BinaryOp("add", a, a)
        assert op.replace_operand(a, b) == 2
        assert op.lhs is b and op.rhs is b

    def test_terminator_successors(self):
        block_a = BasicBlock("a")
        block_b = BasicBlock("b")
        cond = CondBranch(int_const(1, 1), block_a, block_b)
        assert cond.successors() == [block_a, block_b]
        switch = Switch(int_const(0), block_a, [(Constant(I64, 1), block_b)])
        assert set(id(s) for s in switch.successors()) == {id(block_a), id(block_b)}


class TestBuilderAndFunction:
    def test_builder_refuses_terminated_block(self):
        module = Module("m")
        f = create_function(module, "f", I64, [])
        b = IRBuilder(f.entry_block)
        b.ret(0)
        with pytest.raises(RuntimeError):
            b.add(1, 2)

    def test_unique_block_names(self):
        module = Module("m")
        f = create_function(module, "f", VOID, [])
        first = f.add_block("loop")
        second = f.add_block("loop")
        assert first.name != second.name

    def test_predecessors(self):
        module = Module("m")
        f = create_function(module, "f", I64, [I64])
        b = IRBuilder(f.entry_block)
        then = f.add_block("then")
        other = f.add_block("other")
        b.cond_br(b.icmp("sgt", f.args[0], 0), then, other)
        b.position_at_end(then)
        b.ret(1)
        b.position_at_end(other)
        b.ret(0)
        preds = f.predecessors()
        assert preds[then] == [f.entry_block]
        assert preds[other] == [f.entry_block]


class TestModuleAndProgram:
    def test_duplicate_function_rejected(self):
        module = Module("m")
        create_function(module, "f", I64, [])
        with pytest.raises(ValueError):
            create_function(module, "f", I64, [])

    def test_declare_function_is_idempotent(self):
        module = Module("m")
        first = module.declare_function("ext", FunctionType(I64, [I64]))
        second = module.declare_function("ext", FunctionType(I64, [I64]))
        assert first is second

    def test_clone_is_independent(self, demo_program):
        clone = demo_program.clone()
        original_main = demo_program.find_function("main")
        cloned_main = clone.find_function("main")
        assert cloned_main is not original_main
        cloned_main.blocks[0].instructions[0].name = "mutated"
        assert original_main.blocks[0].instructions[0].name != "mutated"

    def test_clone_preserves_behaviour(self, demo_program):
        original = run_program(demo_program)
        cloned = run_program(demo_program.clone())
        assert original.observable() == cloned.observable()

    def test_link_merges_modules(self):
        lib = Module("lib")
        helper = create_function(lib, "helper", I64, [I64],
                                 linkage=Linkage.EXPORTED)
        hb = IRBuilder(helper.entry_block)
        hb.ret(hb.add(helper.args[0], 10))

        app = Module("app")
        main = create_function(app, "main", I64, [])
        mb = IRBuilder(main.entry_block)
        mb.ret(mb.call(helper, [32]))

        program = Program("two", [lib, app])
        linked = program.link()
        assert len(linked.modules) == 1
        assert linked.modules[0].get_function("helper") is not None
        assert run_program(linked).exit_value == 42
        # origin modules are remembered for the trampoline rule
        assert linked.modules[0].get_function("helper").attributes["origin_module"] == "lib"

    def test_link_resolves_duplicate_internal_names(self):
        first = Module("first")
        f1 = create_function(first, "util", I64, [])
        IRBuilder(f1.entry_block).ret(1)
        second = Module("second")
        f2 = create_function(second, "util", I64, [])
        IRBuilder(f2.entry_block).ret(2)
        main_mod = Module("mainmod")
        main = create_function(main_mod, "main", I64, [])
        IRBuilder(main.entry_block).ret(0)
        linked = Program("p", [first, second, main_mod]).link()
        names = [f.name for f in linked.defined_functions()]
        assert len([n for n in names if n.startswith("util")]) == 2
        assert len(set(names)) == len(names)


class TestPrinterAndVerifier:
    def test_printer_round_trips_key_syntax(self, demo_module):
        text = module_to_str(demo_module)
        assert "define i64 @classify" in text
        assert "br " in text and "ret " in text
        assert "declare i64 @putint" in text

    def test_instruction_to_str(self):
        inst = BinaryOp("add", int_const(1), int_const(2), name="t")
        assert "add" in instruction_to_str(inst)

    def test_verifier_accepts_demo(self, demo_module):
        assert_valid(demo_module)

    def test_verifier_rejects_missing_terminator(self):
        module = Module("m")
        f = create_function(module, "f", I64, [])
        IRBuilder(f.entry_block).add(1, 2)
        errors = verify_function(f)
        assert any("terminator" in e for e in errors)

    def test_verifier_rejects_wrong_arity_call(self):
        module = Module("m")
        callee = create_function(module, "callee", I64, [I64])
        IRBuilder(callee.entry_block).ret(0)
        caller = create_function(module, "caller", I64, [])
        call = Call(callee, [])
        caller.entry_block.append(call)
        caller.entry_block.append(Ret(call))
        errors = verify_function(caller)
        assert any("args" in e for e in errors)

    def test_verifier_rejects_cross_function_operand(self):
        module = Module("m")
        first = create_function(module, "first", I64, [])
        fb = IRBuilder(first.entry_block)
        value = fb.add(1, 2)
        fb.ret(value)
        second = create_function(module, "second", I64, [])
        second.entry_block.append(Ret(value))
        errors = verify_function(second)
        assert errors

    def test_verifier_rejects_ret_mismatch(self):
        module = Module("m")
        f = create_function(module, "f", VOID, [])
        f.entry_block.append(Ret(int_const(1)))
        with pytest.raises(VerificationError):
            assert_valid(f)
