"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import ProvenanceMap, obfuscate, Mode
from repro.ir import (IRBuilder, IntType, Module, Program, compatible_type,
                      compress_parameter_lists, create_function, FloatType,
                      PointerType, I64, assert_valid)
from repro.opt import optimize_program
from repro.utils import geometric_mean, stable_hash
from repro.vm import run_program


int_types = st.sampled_from([IntType(8), IntType(16), IntType(32), IntType(64)])
scalar_types = st.one_of(
    int_types,
    st.sampled_from([FloatType(32), FloatType(64)]),
    st.builds(PointerType, int_types),
)


class TestTypeProperties:
    @given(scalar_types, scalar_types)
    def test_compatible_type_is_symmetric(self, a, b):
        assert compatible_type(a, b) == compatible_type(b, a)

    @given(scalar_types)
    def test_compatible_type_is_reflexive(self, a):
        assert compatible_type(a, a) == a

    @given(st.lists(scalar_types, max_size=5), st.lists(scalar_types, max_size=5))
    def test_compression_never_grows_beyond_concatenation(self, a, b):
        merged, a_idx, b_idx = compress_parameter_lists(a, b)
        assert max(len(a), len(b)) <= len(merged) <= len(a) + len(b)
        assert len(a_idx) == len(a) and len(b_idx) == len(b)

    @given(st.lists(scalar_types, max_size=5), st.lists(scalar_types, max_size=5))
    def test_compression_mappings_are_valid_and_compatible(self, a, b):
        merged, a_idx, b_idx = compress_parameter_lists(a, b)
        for original, position in zip(a, a_idx):
            assert compatible_type(original, merged[position]) is not None
        for original, position in zip(b, b_idx):
            assert compatible_type(original, merged[position]) is not None
        # no two parameters of the same side share a slot
        assert len(set(a_idx)) == len(a_idx)
        assert len(set(b_idx)) == len(b_idx)


class TestUtilsProperties:
    @given(st.lists(st.text(max_size=20), min_size=1, max_size=4))
    def test_stable_hash_is_deterministic(self, parts):
        assert stable_hash(*parts) == stable_hash(*parts)
        assert 0 <= stable_hash(*parts) < (1 << 30)

    @given(st.integers(min_value=-(2 ** 70), max_value=2 ** 70),
           st.sampled_from([8, 16, 32, 64]))
    def test_int_wrap_stays_in_range(self, value, bits):
        wrapped = IntType(bits).wrap(value)
        assert IntType(bits).min_value <= wrapped <= IntType(bits).max_value
        # wrapping is idempotent
        assert IntType(bits).wrap(wrapped) == wrapped

    @given(st.lists(st.floats(min_value=-0.5, max_value=3.0), max_size=6))
    def test_geometric_mean_bounds(self, values):
        mean = geometric_mean(values)
        if values:
            assert min(values) - 1e-9 <= mean <= max(values) + 1e-9
        else:
            assert mean == 0.0


class TestProvenanceProperties:
    @given(st.sets(st.text(alphabet="abcdef", min_size=1, max_size=4),
                   min_size=1, max_size=6))
    def test_identity_provenance(self, names):
        provenance = ProvenanceMap(names)
        for name in names:
            assert provenance.is_correct_match(name, name)
            assert provenance.origins_of(name) == frozenset({name})

    @given(st.sets(st.text(alphabet="abcdef", min_size=1, max_size=4),
                   min_size=2, max_size=6))
    def test_derivation_accumulates_origins(self, names):
        names = sorted(names)
        provenance = ProvenanceMap(names)
        provenance.record_derived("merged", names[:2])
        for name in names[:2]:
            assert provenance.is_correct_match(name, "merged")
        provenance.record_derived("merged2", ["merged"])
        for name in names[:2]:
            assert provenance.is_correct_match(name, "merged2")


class TestInterpreterProperties:
    @given(st.integers(min_value=-10 ** 12, max_value=10 ** 12),
           st.integers(min_value=-10 ** 6, max_value=10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_division_matches_c_semantics(self, lhs, rhs):
        module = Module("m")
        f = create_function(module, "main", I64, [])
        b = IRBuilder(f.entry_block)
        b.ret(b.add(b.mul(b.sdiv(lhs, rhs), rhs), b.srem(lhs, rhs)))
        result = run_program(Program("p", [module]))
        # (a/b)*b + a%b == a for C truncated division (b != 0); 0 when b == 0
        assert result.exit_value == (lhs if rhs != 0 else 0)

    @given(st.integers(min_value=0, max_value=40),
           st.integers(min_value=-50, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_loop_sum_matches_python(self, bound, offset):
        module = Module("m")
        f = create_function(module, "main", I64, [])
        b = IRBuilder(f.entry_block)
        acc = b.alloca(I64)
        index = b.alloca(I64)
        b.store(0, acc)
        b.store(0, index)
        loop = f.add_block("loop")
        body = f.add_block("body")
        done = f.add_block("done")
        b.br(loop)
        b.position_at_end(loop)
        i = b.load(index)
        b.cond_br(b.icmp("slt", i, bound), body, done)
        b.position_at_end(body)
        b.store(b.add(b.load(acc), b.add(i, offset)), acc)
        b.store(b.add(i, 1), index)
        b.br(loop)
        b.position_at_end(done)
        b.ret(b.load(acc))
        expected = sum(i + offset for i in range(bound))
        assert run_program(Program("p", [module])).exit_value == expected


class TestObfuscationProperties:
    """Semantic preservation across randomly chosen workloads and modes."""

    @given(st.sampled_from(["echo", "true", "wc", "factor", "seq"]),
           st.sampled_from(list(Mode.ALL)))
    @settings(max_examples=10, deadline=None)
    def test_obfuscation_preserves_observable_behaviour(self, name, mode):
        from repro.workloads import find_program
        workload = find_program(name)
        baseline = run_program(optimize_program(workload.build())).observable()
        result = obfuscate(workload.build(), mode=mode)
        assert_valid(result.program)
        obfuscated = run_program(optimize_program(result.program)).observable()
        assert obfuscated == baseline
