"""Tests for the O-LLVM baselines (Sub / Bog / Fla) and BinTuner."""

import pytest

from repro.backend import lower_program, opcode_histogram
from repro.baselines import (BinTuner, BogusControlFlow, ControlFlowFlattening,
                             InstructionSubstitution, bogus_obfuscator,
                             flattening_obfuscator, standard_ollvm_baselines,
                             sub_obfuscator)
from repro.ir import BinaryOp, Switch, assert_valid
from repro.opt import OptOptions, optimize_program
from repro.vm import run_program
from tests.conftest import build_demo_program


@pytest.fixture(scope="module")
def demo_baseline():
    return run_program(optimize_program(build_demo_program())).observable()


class TestInstructionSubstitution:
    def test_preserves_semantics(self, demo_baseline):
        result = sub_obfuscator().obfuscate(build_demo_program())
        assert run_program(optimize_program(result.program)).observable() == demo_baseline

    def test_rewrites_arithmetic(self):
        program = build_demo_program().link()
        scale = program.modules[0].get_function("scale")
        before_ops = [i.op for i in scale.instructions() if isinstance(i, BinaryOp)]
        InstructionSubstitution(ratio=1.0).run(program)
        after_ops = [i.op for i in scale.instructions() if isinstance(i, BinaryOp)]
        assert len(after_ops) > len(before_ops)
        assert_valid(program)

    def test_ratio_zero_is_noop(self):
        program = build_demo_program().link()
        changed = InstructionSubstitution(ratio=0.0).run(program)
        assert not changed

    def test_provenance_is_identity(self):
        result = sub_obfuscator().obfuscate(build_demo_program())
        assert result.provenance.is_correct_match("classify", "classify")
        assert not result.provenance.is_correct_match("classify", "scale")


class TestBogusControlFlow:
    def test_preserves_semantics(self, demo_baseline):
        result = bogus_obfuscator(ratio=1.0).obfuscate(build_demo_program())
        assert run_program(optimize_program(result.program)).observable() == demo_baseline

    def test_adds_blocks_and_opaque_global(self):
        program = build_demo_program().link()
        before = sum(f.block_count() for f in program.defined_functions())
        BogusControlFlow(ratio=1.0).run(program)
        after = sum(f.block_count() for f in program.defined_functions())
        assert after > before
        assert program.modules[0].get_global("__bogus_opaque_x") is not None
        assert_valid(program)


class TestFlattening:
    def test_preserves_semantics_full_ratio(self, demo_baseline):
        result = flattening_obfuscator(ratio=1.0).obfuscate(build_demo_program())
        assert run_program(optimize_program(result.program)).observable() == demo_baseline

    def test_dispatcher_switch_created(self):
        program = build_demo_program().link()
        ControlFlowFlattening(ratio=1.0).run(program)
        flattened = [f for f in program.defined_functions()
                     if f.attributes.get("ollvm_flattened")]
        assert flattened
        for f in flattened:
            assert any(isinstance(i, Switch) for i in f.instructions())

    def test_ratio_label(self):
        assert flattening_obfuscator(1.0).label == "fla"
        assert flattening_obfuscator(0.1).label == "fla-10"

    def test_standard_baseline_set(self):
        labels = [o.label for o in standard_ollvm_baselines()]
        assert labels == ["sub", "bog", "fla-10"]


class TestBinTuner:
    def test_search_finds_configuration_distant_from_o0(self):
        tuner = BinTuner(iterations=4, seed=3)
        result = tuner.tune(build_demo_program())
        assert result.best_score > 0
        assert len(result.history) == 5

    def test_tuned_binary_differs_from_baseline(self):
        tuner = BinTuner(iterations=3, seed=1)
        result = tuner.tune(build_demo_program())
        o0 = lower_program(optimize_program(build_demo_program(),
                                            OptOptions(level=0, lto=False)))
        assert opcode_histogram(result.best_binary) != opcode_histogram(o0)

    def test_deterministic_given_seed(self):
        first = BinTuner(iterations=3, seed=9).tune(build_demo_program())
        second = BinTuner(iterations=3, seed=9).tune(build_demo_program())
        assert first.best_options == second.best_options
        assert first.best_score == pytest.approx(second.best_score)

    def test_tuned_options_preserve_semantics(self, demo_baseline):
        result = BinTuner(iterations=3, seed=5).tune(build_demo_program())
        optimized = optimize_program(build_demo_program(), result.best_options)
        assert run_program(optimized).observable() == demo_baseline
