"""The shared artifact store: keys, layers, concurrency, warm attach.

Covers the tentpole guarantees of the ``repro.store`` subsystem:

* content addressing is stable and value-based (a digest survives process
  and disk round trips);
* the in-process LRU layer and the on-disk object tree compose (memory →
  disk → build), and a *warm* attach rebuilds zero variants;
* concurrent processes writing/reading the same artifact key cannot corrupt
  the tree (atomic rename; first-writer-kept at the API level, last-writer
  intact when both race through ``os.replace``);
* the :class:`GenerationLog` manifest validates warm starts cheaply and an
  incompatible tree is rejected at attach;
* ``FeatureIndex`` payloads round-trip through the store and warm-start a
  fresh index;
* the deprecated ``REPRO_VARIANT_CACHE_DIR`` keeps working — as a legacy
  ``variants.pkl`` import and as an alias for a store tree.
"""

import json
import multiprocessing
import os
import pickle

import pytest

from repro.core.variant_cache import VariantCache, variant_key
from repro.diffing.index import clear_index_cache, feature_index
from repro.evaluation.overhead import build_variant, measure_overhead
from repro.store import (KIND_BINARY, KIND_DIFF, KIND_FEATURES, KIND_VARIANT,
                         QUARANTINE_DIR, ArtifactStore, GenerationLog,
                         StoreError, canonical_key, is_store_tree,
                         persist_features, store_digest, store_dir_from_env,
                         warm_features)
from repro.workloads.suites import spec2006_programs

WORKLOADS = spec2006_programs()[:2]
LABELS = ("fission", "fufi.ori")


class TestContentAddressing:
    def test_digest_is_stable_and_value_based(self):
        key = variant_key(WORKLOADS[0], "baseline")
        assert store_digest(KIND_VARIANT, key) == store_digest(
            KIND_VARIANT, variant_key(WORKLOADS[0], "baseline"))
        assert len(store_digest(KIND_VARIANT, key)) == 64

    def test_kind_namespaces_are_disjoint(self):
        key = ("k", 1)
        assert store_digest(KIND_VARIANT, key) != store_digest(KIND_BINARY, key)

    def test_different_keys_different_digests(self):
        a = variant_key(WORKLOADS[0], "baseline")
        b = variant_key(WORKLOADS[1], "baseline")
        assert store_digest(KIND_VARIANT, a) != store_digest(KIND_VARIANT, b)

    def test_canonical_key_rejects_identity_hashed_components(self):
        class Opaque:
            pass
        with pytest.raises(TypeError):
            canonical_key((1, Opaque()))

    def test_canonical_key_distinguishes_string_from_int(self):
        assert canonical_key(("1",)) != canonical_key((1,))

    def test_canonical_key_accepts_enum_members(self):
        """Pre-store cache keys could embed enums (hashable singletons);
        the façade must keep accepting them, stably across processes."""
        import enum

        class Color(enum.Enum):
            RED = 1
            BLUE = 2
        assert canonical_key((Color.RED,)) == canonical_key((Color.RED,))
        assert canonical_key((Color.RED,)) != canonical_key((Color.BLUE,))
        assert "Color.RED" in canonical_key((Color.RED,))


class TestMemoryLayer:
    def test_get_or_build_miss_then_hit(self):
        store = ArtifactStore()
        calls = []
        first = store.get_or_build(KIND_VARIANT, ("k",),
                                   lambda: calls.append(1) or "built")
        second = store.get_or_build(KIND_VARIANT, ("k",),
                                    lambda: calls.append(2) or "rebuilt")
        assert first == second == "built" and calls == [1]
        assert store.memory_hits == 1 and store.misses == 1
        assert store.hit_rate == 0.5

    def test_lru_bound_evicts_oldest(self):
        store = ArtifactStore(max_memory_entries=2)
        for name in ("a", "b", "c"):
            store.put(KIND_VARIANT, (name,), name)
        assert not store.contains(KIND_VARIANT, ("a",))
        assert store.contains(KIND_VARIANT, ("c",))
        assert store.entry_count(KIND_VARIANT) == 2

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError):
            ArtifactStore(max_memory_entries=0)

    def test_in_memory_store_has_no_object_paths(self):
        with pytest.raises(ValueError):
            ArtifactStore().object_path(KIND_VARIANT, "ab" * 32)


class TestDiskLayer:
    def test_round_trip_across_instances(self, tmp_path):
        root = str(tmp_path / "store")
        writer = ArtifactStore.attach(root)
        digest = writer.put(KIND_VARIANT, ("k", 1), {"payload": [1, 2, 3]})
        reader = ArtifactStore.attach(root)
        assert reader.get(KIND_VARIANT, ("k", 1)) == {"payload": [1, 2, 3]}
        assert reader.disk_hits == 1
        assert os.path.exists(writer.object_path(KIND_VARIANT, digest))

    def test_disk_hit_promotes_into_memory(self, tmp_path):
        root = str(tmp_path / "store")
        ArtifactStore.attach(root).put(KIND_VARIANT, ("k",), "v")
        reader = ArtifactStore.attach(root)
        reader.get(KIND_VARIANT, ("k",))
        reader.get(KIND_VARIANT, ("k",))
        assert reader.disk_hits == 1 and reader.memory_hits == 1

    def test_memory_eviction_leaves_disk_copy(self, tmp_path):
        root = str(tmp_path / "store")
        store = ArtifactStore.attach(root, max_memory_entries=1)
        store.put(KIND_VARIANT, ("a",), "a")
        store.put(KIND_VARIANT, ("b",), "b")   # evicts ("a",) from memory
        assert store.get(KIND_VARIANT, ("a",)) == "a"  # served from disk
        assert store.disk_hits == 1

    def test_lowered_binary_round_trips_bit_identically(self, tmp_path):
        """Kind ``binary``: a lowered Binary survives the pickle → disk →
        unpickle trip with its machine code exactly preserved (content
        digest over functions, blocks, instructions and CFG edges)."""
        from repro.toolchain import obfuscator_for
        root = str(tmp_path / "store")
        store = ArtifactStore.attach(root)
        artifact = build_variant(WORKLOADS[0], "fission")
        key = variant_key(WORKLOADS[0], obfuscator_for("fission"))
        store.put(KIND_BINARY, key, artifact.binary)

        restored = ArtifactStore.attach(root).get(KIND_BINARY, key)
        assert restored is not artifact.binary
        assert restored.content_digest() == artifact.binary.content_digest()
        # and the digest is sensitive to actual code differences
        other = build_variant(WORKLOADS[0], "fufi.ori")
        assert other.binary.content_digest() != artifact.binary.content_digest()

    def test_built_variants_persist_their_binary_alongside(self, tmp_path):
        """A store-backed build writes the lowered binary under kind
        ``binary`` too, for diff-only consumers of the shared tree."""
        from repro.toolchain import obfuscator_for
        root = str(tmp_path / "store")
        cache = VariantCache(store=ArtifactStore.attach(root))
        artifact = build_variant(WORKLOADS[0], "fission", cache=cache)
        key = variant_key(WORKLOADS[0], obfuscator_for("fission"))
        restored = ArtifactStore.attach(root).get(KIND_BINARY, key)
        assert restored is not None
        assert restored.content_digest() == artifact.binary.content_digest()

    def test_first_writer_kept(self, tmp_path):
        root = str(tmp_path / "store")
        a = ArtifactStore.attach(root)
        b = ArtifactStore.attach(root)
        a.put(KIND_VARIANT, ("k",), "first")
        b.put(KIND_VARIANT, ("k",), "second")  # disk copy not replaced
        fresh = ArtifactStore.attach(root)
        assert fresh.get(KIND_VARIANT, ("k",)) == "first"

    def test_overwrite_replaces_atomically(self, tmp_path):
        root = str(tmp_path / "store")
        store = ArtifactStore.attach(root)
        store.put(KIND_VARIANT, ("k",), "v1")
        store.put(KIND_VARIANT, ("k",), "v2", overwrite=True)
        assert ArtifactStore.attach(root).get(KIND_VARIANT, ("k",)) == "v2"


#: Every artifact kind the pipeline persists — damage to any of them must
#: degrade to a cache miss (builds are deterministic), never to an exception.
ALL_KINDS = (KIND_VARIANT, KIND_BINARY, KIND_FEATURES, KIND_DIFF)


class TestCorruptObjectDegradation:
    """Damaged on-disk objects are misses, never crashes, for every kind."""

    @staticmethod
    def _stored(root, kind):
        store = ArtifactStore.attach(root)
        digest = store.put(kind, ("k", kind), "good")
        return store.object_path(kind, digest)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_truncated_pickle_is_a_miss(self, kind, tmp_store):
        path = self._stored(tmp_store, kind)
        with open(path, "wb") as fh:
            fh.write(b"\x80corrupt")
        fresh = ArtifactStore.attach(tmp_store)
        rebuilt = fresh.get_or_build(kind, ("k", kind), lambda: "rebuilt")
        assert rebuilt == "rebuilt" and fresh.misses == 1

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_empty_object_file_is_a_miss(self, kind, tmp_store):
        path = self._stored(tmp_store, kind)
        with open(path, "wb"):
            pass
        fresh = ArtifactStore.attach(tmp_store)
        assert fresh.get(kind, ("k", kind), default="absent") == "absent"

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_wrong_schema_envelope_is_a_miss(self, kind, tmp_store):
        path = self._stored(tmp_store, kind)
        with open(path, "rb") as fh:
            envelope = pickle.load(fh)
        envelope["store_schema"] = envelope["store_schema"] + 1
        with open(path, "wb") as fh:
            pickle.dump(envelope, fh)
        fresh = ArtifactStore.attach(tmp_store)
        assert fresh.get(kind, ("k", kind), default="absent") == "absent"

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_wrong_key_envelope_is_a_miss(self, kind, tmp_store):
        """A digest collision (or a tampered file) must never serve the
        wrong artifact: the envelope stores the full key and is checked."""
        path = self._stored(tmp_store, kind)
        with open(path, "rb") as fh:
            envelope = pickle.load(fh)
        envelope["key"] = ("other",)
        with open(path, "wb") as fh:
            pickle.dump(envelope, fh)
        fresh = ArtifactStore.attach(tmp_store)
        assert fresh.get(kind, ("k", kind), default="absent") == "absent"

    def test_damaged_diff_payloads_degrade_through_the_loaders(self, tmp_store):
        """The typed diff-payload loaders reject shape damage as a miss."""
        from repro.store.diff_payloads import (load_roster, load_unit,
                                               load_whole, roster_key,
                                               unit_key, whole_key)
        from repro.store import KIND_DIFF as kind
        store = ArtifactStore.attach(tmp_store)
        pair_key = ("diff", ("tool", 1), ("base",), ("var",))
        store.put(kind, roster_key(pair_key), {"units": "not-a-tuple"})
        store.put(kind, unit_key(pair_key, "f"), {"ranked": "garbage"})
        store.put(kind, whole_key(pair_key), {"matches": None})
        assert load_roster(store, pair_key) is None
        assert load_unit(store, pair_key, "f") is None
        assert load_whole(store, pair_key) is None


class TestGenerationLog:
    def test_manifest_written_and_counts(self, tmp_path):
        root = str(tmp_path / "store")
        store = ArtifactStore.attach(root)
        store.put(KIND_VARIANT, ("a",), 1)
        store.put(KIND_BINARY, ("b",), 2)
        fresh = ArtifactStore.attach(root)
        assert fresh.warm_entries() == 2
        assert fresh.warm_entries(KIND_VARIANT) == 1
        assert fresh.warm_entries(KIND_BINARY) == 1

    def test_incompatible_schema_rejected_at_attach(self, tmp_path):
        root = str(tmp_path / "store")
        ArtifactStore.attach(root)
        log = GenerationLog.load(root)
        log.store_schema += 1
        path = GenerationLog.path_for(root)
        with open(path, "w") as fh:
            json.dump({"store_schema": log.store_schema,
                       "key_schema": log.key_schema,
                       "generation": 1, "entries": {}}, fh)
        with pytest.raises(StoreError):
            ArtifactStore.attach(root)

    def test_damaged_manifest_rejected_at_attach(self, tmp_path):
        root = str(tmp_path / "store")
        ArtifactStore.attach(root)
        with open(GenerationLog.path_for(root), "w") as fh:
            fh.write("{not json")
        with pytest.raises(StoreError):
            ArtifactStore.attach(root)

    def test_merge_keeps_both_writers_entries(self, tmp_path):
        root = str(tmp_path / "store")
        a = ArtifactStore.attach(root)
        b = ArtifactStore.attach(root)
        a.put(KIND_VARIANT, ("a",), 1)
        b.put(KIND_VARIANT, ("b",), 2)
        assert ArtifactStore.attach(root).warm_entries(KIND_VARIANT) == 2

    def test_is_store_tree(self, tmp_path):
        root = str(tmp_path / "store")
        assert not is_store_tree(root)
        ArtifactStore.attach(root)
        assert is_store_tree(root)


class TestEnvResolution:
    def test_repro_store_dir_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "s"))
        monkeypatch.setenv("REPRO_VARIANT_CACHE_DIR", str(tmp_path / "v"))
        assert store_dir_from_env() == str(tmp_path / "s")

    def test_alias_only_counts_when_it_is_a_store_tree(self, tmp_path,
                                                       monkeypatch):
        alias = str(tmp_path / "alias")
        os.makedirs(alias)
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        monkeypatch.setenv("REPRO_VARIANT_CACHE_DIR", alias)
        assert store_dir_from_env() is None        # legacy dir, not a store
        ArtifactStore.attach(alias)
        assert store_dir_from_env() == alias       # now it is one

    def test_unset_means_no_store(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        monkeypatch.delenv("REPRO_VARIANT_CACHE_DIR", raising=False)
        assert store_dir_from_env() is None


class TestVariantCacheFacade:
    def test_warm_attach_rebuilds_zero_variants(self, tmp_store):
        """The acceptance criterion: a second attach builds nothing."""
        root = tmp_store
        cold = VariantCache(store=ArtifactStore.attach(root))
        reference = measure_overhead(WORKLOADS, labels=LABELS, cache=cold)
        built = cold.misses
        assert built == len(WORKLOADS) * (len(LABELS) + 1)

        warm = VariantCache(store=ArtifactStore.attach(root))
        replay = measure_overhead(WORKLOADS, labels=LABELS, cache=warm)
        assert warm.misses == 0                      # zero rebuilds
        assert warm.hits == built
        assert warm.store.disk_hits == built         # all from the tree
        assert [(r.program, r.label, r.cycles) for r in replay.rows] == \
               [(r.program, r.label, r.cycles) for r in reference.rows]

    def test_facade_counts_disk_hits_as_hits(self, tmp_store):
        root = tmp_store
        VariantCache(store=ArtifactStore.attach(root)).get_or_build(
            ("k",), lambda: "v")
        warm = VariantCache(store=ArtifactStore.attach(root))
        assert warm.get_or_build(("k",), lambda: "rebuilt") == "v"
        assert warm.hits == 1 and warm.misses == 0

    def test_store_backed_len_and_contains_see_disk(self, tmp_store):
        root = tmp_store
        VariantCache(store=ArtifactStore.attach(root)).get_or_build(
            ("k",), lambda: "v")
        warm = VariantCache(store=ArtifactStore.attach(root))
        assert len(warm) == 1 and ("k",) in warm

    def test_clear_keeps_shared_disk_objects(self, tmp_store):
        root = tmp_store
        cache = VariantCache(store=ArtifactStore.attach(root))
        cache.get_or_build(("k",), lambda: "v")
        cache.clear()
        assert len(cache) == 1                       # disk object survives
        assert cache.get_or_build(("k",), lambda: "rebuilt") == "v"


class TestFeaturePayloads:
    def test_features_round_trip_and_warm_start(self, tmp_store):
        root = tmp_store
        store = ArtifactStore.attach(root)
        workload = WORKLOADS[0]
        artifact = build_variant(workload, "baseline")
        key = variant_key(workload, "baseline")

        index = feature_index(artifact.binary)
        structural = index.structural_features()
        callees = index.callees()
        assert persist_features(store, key, artifact.binary) is not None
        assert persist_features(store, key, artifact.binary) is None  # no-op

        clear_index_cache()
        fresh_artifact = build_variant(workload, "baseline")
        fresh_store = ArtifactStore.attach(root)
        adopted = warm_features(fresh_store, key, fresh_artifact.binary)
        assert adopted >= 2
        fresh_index = feature_index(fresh_artifact.binary)
        # adopted features are served from the memo, not recomputed
        boom = lambda: (_ for _ in ()).throw(AssertionError("recomputed"))
        assert fresh_index.memo("structural", boom) == structural
        assert fresh_index.memo("callees", boom) == callees

    def test_adopt_never_overrides_local_entries(self):
        artifact = build_variant(WORKLOADS[0], "baseline")
        index = feature_index(artifact.binary)
        local = index.structural_features()
        adopted = index.adopt_payload({"structural": "bogus"})
        assert adopted == 0
        assert index.structural_features() == local

    def test_warm_features_without_payload_is_noop(self, tmp_store):
        store = ArtifactStore.attach(tmp_store)
        artifact = build_variant(WORKLOADS[0], "baseline")
        assert warm_features(store, variant_key(WORKLOADS[0], "baseline"),
                             artifact.binary) == 0


# -- concurrent access (two processes, one tree) --------------------------------------


def _writer_process(root, payload, barrier, results):
    store = ArtifactStore.attach(root)
    barrier.wait(timeout=30)
    for round_index in range(20):
        store.put(KIND_VARIANT, ("contended",), payload,
                  overwrite=bool(round_index % 2))
    results.put(("wrote", payload))


def _reader_process(root, barrier, results):
    store = ArtifactStore.attach(root)
    barrier.wait(timeout=30)
    seen = set()
    for _ in range(50):
        value = store.get(KIND_VARIANT, ("contended",))
        if value is not None:
            seen.add(value)
        store.clear_memory()  # force the next read through the disk layer
    results.put(("read", tuple(sorted(seen))))


class TestConcurrentAccess:
    def test_two_processes_same_key_no_corruption(self, tmp_path):
        """Two writers + one reader hammer one artifact key: every read must
        observe a complete payload from one writer (atomic rename), never an
        interleaved or truncated object, and the tree must stay attachable."""
        root = str(tmp_path / "store")
        ArtifactStore.attach(root)  # create the tree up front
        ctx = multiprocessing.get_context("spawn")
        barrier = ctx.Barrier(3)
        results = ctx.Queue()
        procs = [
            ctx.Process(target=_writer_process,
                        args=(root, "payload-A", barrier, results)),
            ctx.Process(target=_writer_process,
                        args=(root, "payload-B", barrier, results)),
            ctx.Process(target=_reader_process,
                        args=(root, barrier, results)),
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        outcomes = dict(results.get(timeout=10) for _ in procs)
        # whichever writer won any given race, the reader only ever saw
        # complete payloads
        assert set(outcomes["read"]) <= {"payload-A", "payload-B"}
        # and the final object is intact and one-of (last-writer-wins on the
        # overwriting rounds, first-writer-kept on the others — either way a
        # whole payload, asserted here)
        final = ArtifactStore.attach(root).get(KIND_VARIANT, ("contended",))
        assert final in ("payload-A", "payload-B")

    def test_concurrent_builds_share_one_tree(self, tmp_path):
        """Two worker processes building the same matrix must agree and must
        leave exactly one object per variant in the tree."""
        root = str(tmp_path / "store")
        ArtifactStore.attach(root)
        ctx = multiprocessing.get_context("spawn")
        results = ctx.Queue()
        procs = [ctx.Process(target=_build_matrix_process,
                             args=(root, results)) for _ in range(2)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=300)
            assert proc.exitcode == 0
        rows_a = results.get(timeout=10)
        rows_b = results.get(timeout=10)
        assert rows_a == rows_b
        expected = len(WORKLOADS[:1]) * (len(LABELS) + 1)
        assert ArtifactStore.attach(root).entry_count(KIND_VARIANT) == expected


def _build_matrix_process(root, results):
    store = ArtifactStore.attach(root)
    cache = VariantCache(store=store)
    report = measure_overhead(WORKLOADS[:1], labels=LABELS, cache=cache)
    results.put([(r.program, r.label, r.baseline_cycles, r.cycles)
                 for r in report.rows])


# -- self-healing: quarantine + per-kind corruption accounting -------------------------


class TestQuarantine:
    """Corrupt objects are moved aside with a reason record and counted,
    never silently swallowed (satellite: the read path's blanket ``except``
    is gone — each failure kind advances its own counter)."""

    @staticmethod
    def _stored(root, kind=KIND_VARIANT, key=("q",)):
        store = ArtifactStore.attach(root)
        digest = store.put(kind, key, "good")
        return store, digest, store.object_path(kind, digest)

    def test_truncated_object_is_quarantined_with_reason(self, tmp_store):
        _, digest, path = self._stored(tmp_store)
        with open(path, "wb") as fh:
            fh.write(b"\x80corrupt")
        fresh = ArtifactStore.attach(tmp_store)
        assert fresh.get(KIND_VARIANT, ("q",), default="absent") == "absent"
        # the damaged file moved into quarantine/<kind>/<digest>.pkl ...
        assert not os.path.exists(path)
        moved = fresh.quarantine_path(KIND_VARIANT, digest)
        assert os.path.exists(moved)
        assert moved == os.path.join(tmp_store, QUARANTINE_DIR, KIND_VARIANT,
                                     f"{digest}.pkl")
        # ... with a machine-readable reason record alongside
        with open(os.path.join(os.path.dirname(moved),
                               f"{digest}.reason.json")) as fh:
            record = json.load(fh)
        assert record["kind"] == KIND_VARIANT
        assert record["digest"] == digest
        # b"\x80c..." reads as an unsupported pickle protocol -> ValueError
        assert record["cause"] == "ValueError"
        assert record["pid"] == os.getpid()
        assert "reason" in record and "quarantined_at" in record

    def test_counters_are_per_cause_and_surface_in_stats(self, tmp_store):
        _, _, path = self._stored(tmp_store)
        with open(path, "wb") as fh:
            fh.write(b"\x80corrupt")
        fresh = ArtifactStore.attach(tmp_store)
        fresh.get(KIND_VARIANT, ("q",))
        assert fresh.corrupt_reads == {"ValueError": 1}
        assert fresh.quarantined == 1
        stats = fresh.stats()
        assert stats["corrupt_reads"] == {"ValueError": 1}
        assert stats["quarantined"] == 1

    def test_empty_file_counts_eof(self, tmp_store):
        _, _, path = self._stored(tmp_store)
        with open(path, "wb"):
            pass
        fresh = ArtifactStore.attach(tmp_store)
        fresh.get(KIND_VARIANT, ("q",))
        assert fresh.corrupt_reads == {"EOFError": 1}

    def test_envelope_mismatch_is_quarantined_as_such(self, tmp_store):
        _, digest, path = self._stored(tmp_store)
        with open(path, "rb") as fh:
            envelope = pickle.load(fh)
        envelope["key"] = ("tampered",)
        with open(path, "wb") as fh:
            pickle.dump(envelope, fh)
        fresh = ArtifactStore.attach(tmp_store)
        assert fresh.get(KIND_VARIANT, ("q",), default="absent") == "absent"
        assert fresh.corrupt_reads == {"envelope_mismatch": 1}
        assert os.path.exists(fresh.quarantine_path(KIND_VARIANT, digest))

    def test_rebuild_into_clean_slot_heals(self, tmp_store):
        """After quarantine the slot is empty, so the deterministic build
        repopulates it and subsequent reads are clean."""
        _, _, path = self._stored(tmp_store)
        with open(path, "wb") as fh:
            fh.write(b"junk")
        fresh = ArtifactStore.attach(tmp_store)
        assert fresh.get_or_build(KIND_VARIANT, ("q",),
                                  lambda: "rebuilt") == "rebuilt"
        healed = ArtifactStore.attach(tmp_store)
        assert healed.get(KIND_VARIANT, ("q",)) == "rebuilt"
        assert healed.corrupt_reads == {}

    def test_missing_file_is_not_corruption(self, tmp_store):
        store = ArtifactStore.attach(tmp_store)
        assert store.get(KIND_VARIANT, ("never",), default=None) is None
        assert store.corrupt_reads == {} and store.quarantined == 0

    def test_reset_counters_clears_corruption_accounting(self, tmp_store):
        _, _, path = self._stored(tmp_store)
        with open(path, "wb") as fh:
            fh.write(b"junk")
        fresh = ArtifactStore.attach(tmp_store)
        fresh.get(KIND_VARIANT, ("q",))
        assert fresh.corrupt_reads
        fresh.reset_counters()
        assert fresh.corrupt_reads == {} and fresh.quarantined == 0


# -- generation log durability under concurrent writers --------------------------------


def _log_saver_process(root, barrier, rounds):
    log = GenerationLog.load(root)
    barrier.wait(timeout=30)
    for _ in range(rounds):
        log.save(root)


class TestGenerationLogDurability:
    def test_concurrent_savers_keep_manifest_valid(self, tmp_path):
        """Two processes saving the stamp concurrently (merge-on-save):
        the manifest must stay parseable, schema-compatible, and its
        generation must reflect every save that landed last."""
        root = str(tmp_path / "store")
        ArtifactStore.attach(root)
        before = GenerationLog.load(root)
        ctx = multiprocessing.get_context("spawn")
        barrier = ctx.Barrier(2)
        rounds = 10
        procs = [ctx.Process(target=_log_saver_process,
                             args=(root, barrier, rounds)) for _ in range(2)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        after = GenerationLog.load(root)
        assert after is not None and after.compatible_with(before)
        # merge-on-save makes the counter monotonic across writers: the
        # last save to land re-read the other writer's progress first, so
        # the surviving stamp is at least one writer's full round count
        assert after.generation >= before.generation + rounds
        # and the tree still warm-attaches
        ArtifactStore.attach(root)

    def test_concurrent_ledger_appends_keep_every_entry(self, tmp_path):
        root = str(tmp_path / "store")
        a = ArtifactStore.attach(root)
        b = ArtifactStore.attach(root)
        for index in range(10):
            a.put(KIND_VARIANT, ("a", index), index)
            b.put(KIND_VARIANT, ("b", index), index)
        merged = ArtifactStore.attach(root)
        assert merged.warm_entries(KIND_VARIANT) == 20

    def test_rewrite_entries_round_trip(self, tmp_path):
        root = str(tmp_path / "store")
        store = ArtifactStore.attach(root)
        store.put(KIND_VARIANT, ("keep",), 1)
        store.put(KIND_BINARY, ("drop",), 2)
        log = GenerationLog.load(root)
        victim = store_digest(KIND_BINARY, ("drop",))
        del log.entries[victim]
        log.rewrite_entries(root)
        reloaded = GenerationLog.load(root)
        assert victim not in reloaded.entries
        assert store_digest(KIND_VARIANT, ("keep",)) in reloaded.entries
        assert reloaded.count(KIND_VARIANT) == 1
        assert reloaded.count(KIND_BINARY) == 0
