"""Differential tests: compiled-dispatch VM vs. the legacy interpreter.

The compiled fast path must be bit-for-bit identical on everything the
evaluation observes: exit value, output stream, cycle count, step count,
instruction count and call count — across every workload of every suite
(`workloads/suites.py`), and across obfuscated/optimized variants.
"""

import pytest

from repro.core.obfuscator import obfuscate
from repro.opt.pipelines import optimize_program
from repro.vm import Interpreter, StepLimitExceeded, run_program
from repro.workloads.suites import load_suite, suite_names
from repro.ir import IRBuilder, Module, Program, create_function, I64


def result_tuple(result):
    return (result.exit_value, tuple(result.output), result.cycles,
            result.instructions_executed, result.call_count, result.steps)


def all_workloads():
    for name in suite_names():
        for workload in load_suite(name):
            yield workload


class TestEveryWorkload:
    @pytest.mark.parametrize("workload", list(all_workloads()),
                             ids=lambda wp: f"{wp.suite}-{wp.name}")
    def test_identical_on_workload(self, workload):
        program = workload.build()
        legacy = run_program(program, compiled=False)
        fast = run_program(program, compiled=True)
        assert result_tuple(legacy) == result_tuple(fast)


class TestObfuscatedVariants:
    @pytest.mark.parametrize("mode", ["fission", "fusion", "fufi.sep",
                                      "fufi.ori", "fufi.all"])
    def test_identical_after_khaos_and_o2(self, mode):
        workload = load_suite("spec2006")[0]
        optimized = optimize_program(obfuscate(workload.build(),
                                               mode=mode).program)
        legacy = run_program(optimized, compiled=False)
        fast = run_program(optimized, compiled=True)
        assert result_tuple(legacy) == result_tuple(fast)


class TestEdgeSemantics:
    def test_step_limit_fires_at_the_same_step(self):
        workload = load_suite("coreutils")[0]
        program = workload.build()
        reference = run_program(program)
        limit = reference.steps // 2
        outcomes = {}
        for compiled in (False, True):
            interp = Interpreter(program, max_steps=limit, compiled=compiled)
            with pytest.raises(StepLimitExceeded):
                interp.run()
            outcomes[compiled] = interp.steps
        assert outcomes[False] == outcomes[True] == limit + 1

    def test_exit_mid_program_counts_identically(self):
        from repro.ir import FunctionType
        module = Module("m")
        putint = module.declare_function("putint", FunctionType(I64, [I64]))
        exit_fn = module.declare_function("exit", FunctionType(I64, [I64]))
        f = create_function(module, "main", I64, [])
        b = IRBuilder(f.entry_block)
        b.call(putint, [b.add(20, 22)])
        b.call(exit_fn, [3])
        b.call(putint, [99])  # never reached
        b.ret(0)
        program = Program("p", [module])
        legacy = run_program(program, compiled=False)
        fast = run_program(program, compiled=True)
        assert legacy.exit_value == fast.exit_value == 3
        assert result_tuple(legacy) == result_tuple(fast)

    def test_invalidate_compiled_drops_cached_blocks(self):
        workload = load_suite("coreutils")[0]
        program = workload.build()
        interp = Interpreter(program, compiled=True)
        interp.run()
        assert interp._compiled_blocks
        some_block = next(iter(interp._compiled_blocks))
        function = some_block.parent
        interp.invalidate_compiled(function)
        assert all(block.parent is not function
                   for block in interp._compiled_blocks)
        interp.invalidate_compiled()
        assert not interp._compiled_blocks

    def test_dispatch_env_var_selects_the_path(self, monkeypatch):
        workload = load_suite("coreutils")[1]
        program = workload.build()
        monkeypatch.setenv("REPRO_VM_DISPATCH", "legacy")
        assert Interpreter(program).compiled is False
        monkeypatch.setenv("REPRO_VM_DISPATCH", "compiled")
        assert Interpreter(program).compiled is True
        monkeypatch.delenv("REPRO_VM_DISPATCH")
        assert Interpreter(program).compiled is True
