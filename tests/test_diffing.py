"""Tests for the five diffing tools and the matching/metric framework."""

import pytest

from repro.core import ProvenanceMap
from repro.diffing import (Asm2Vec, BinDiff, DeepBinDiff, Safe, VulSeeker,
                           all_differs, differ_by_name, escape_at_n,
                           precision_at_1, tool_table)
from repro.toolchain import build_baseline, build_obfuscated, obfuscator_for
from repro.workloads import find_program
from tests.conftest import build_demo_program


@pytest.fixture(scope="module")
def demo_binaries():
    baseline = build_baseline(build_demo_program())
    khaos = build_obfuscated(build_demo_program(), obfuscator_for("fufi.all"))
    sub = build_obfuscated(build_demo_program(), obfuscator_for("sub"))
    return baseline, khaos, sub


class TestFramework:
    def test_tool_table_matches_table1(self):
        rows = {row["diffing"]: row for row in tool_table()}
        assert rows["BinDiff"]["symbol relying"] == "Y"
        assert rows["BinDiff"]["call-graph lacking"] == "N"
        assert rows["VulSeeker"]["memory consuming"] == "Y"
        assert rows["Asm2Vec"]["call-graph lacking"] == "Y"
        assert rows["DeepBinDiff"]["granularity"] == "basic block"
        assert len(rows) == 5

    def test_differ_by_name(self):
        assert differ_by_name("bindiff").name == "BinDiff"
        with pytest.raises(KeyError):
            differ_by_name("ghidra")

    @pytest.mark.parametrize("differ", all_differs(), ids=lambda d: d.name)
    def test_self_diff_has_high_precision(self, differ, demo_binaries):
        baseline, _, _ = demo_binaries
        provenance = ProvenanceMap(baseline.binary.function_names())
        result = differ.diff(baseline.binary, baseline.binary)
        # feature-only tools can tie on structurally identical functions, so
        # "high" rather than perfect; BinDiff has symbols and must be perfect
        minimum = 1.0 if differ.name == "BinDiff" else 0.6
        assert precision_at_1(result, provenance) >= minimum
        assert 0.0 <= result.similarity_score <= 1.0

    @pytest.mark.parametrize("differ", all_differs(), ids=lambda d: d.name)
    def test_result_contains_every_original_function(self, differ, demo_binaries):
        baseline, khaos, _ = demo_binaries
        result = differ.diff(baseline.binary, khaos.binary)
        assert set(result.matches) == set(baseline.binary.function_names())
        for ranked in result.matches.values():
            scores = [score for _, score in ranked]
            assert scores == sorted(scores, reverse=True)

    def test_rank_of_correct_uses_provenance(self, demo_binaries):
        baseline, khaos, _ = demo_binaries
        result = BinDiff().diff(baseline.binary, khaos.binary)
        for name in baseline.binary.function_names():
            rank = result.rank_of_correct(name, khaos.provenance)
            assert rank is None or rank >= 1

    def test_escape_at_n(self, demo_binaries):
        baseline, khaos, _ = demo_binaries
        result = BinDiff().diff(baseline.binary, khaos.binary)
        name = baseline.binary.function_names()[0]
        # escape at a huge n can only be True if there is no correct match at all
        rank = result.rank_of_correct(name, khaos.provenance)
        assert escape_at_n(result, khaos.provenance, name, 10 ** 6) == (rank is None)


class TestToolBehaviour:
    def test_bindiff_exploits_symbols(self, demo_binaries):
        baseline, khaos, _ = demo_binaries
        unstripped = BinDiff().diff(baseline.binary, khaos.binary)
        stripped = BinDiff().diff(baseline.binary, khaos.binary.strip())
        provenance = khaos.provenance
        assert (precision_at_1(unstripped, provenance)
                >= precision_at_1(stripped, provenance))

    def test_khaos_hurts_bindiff_more_than_substitution(self, demo_binaries):
        """The paper's core claim in its most robust form: the inter-procedural
        obfuscation degrades the symbol/structure matcher, while instruction
        substitution leaves it intact (names and function set unchanged)."""
        workload = find_program("429.mcf")
        baseline = build_baseline(workload.build())
        sub = build_obfuscated(workload.build(), obfuscator_for("sub"))
        khaos = build_obfuscated(workload.build(), obfuscator_for("fufi.all"))
        differ = BinDiff()
        sub_precision = precision_at_1(differ.diff(baseline.binary, sub.binary),
                                       sub.provenance)
        khaos_precision = precision_at_1(differ.diff(baseline.binary, khaos.binary),
                                         khaos.provenance)
        assert sub_precision == pytest.approx(1.0)
        assert khaos_precision < sub_precision

    def test_semantic_tools_produce_valid_precision_under_khaos(self, demo_binaries):
        baseline, khaos, _ = demo_binaries
        for differ in (VulSeeker(), Asm2Vec(), Safe()):
            result = differ.diff(baseline.binary, khaos.binary)
            assert 0.0 <= precision_at_1(result, khaos.provenance) <= 1.0

    def test_deepbindiff_votes_sum_to_one(self, demo_binaries):
        baseline, khaos, _ = demo_binaries
        result = DeepBinDiff().diff(baseline.binary, khaos.binary)
        for ranked in result.matches.values():
            if ranked:
                assert sum(score for _, score in ranked) <= 1.0 + 1e-6

    def test_similarity_score_in_unit_interval(self, demo_binaries):
        baseline, khaos, sub = demo_binaries
        for differ in all_differs():
            for variant in (khaos, sub):
                score = differ.diff(baseline.binary, variant.binary).similarity_score
                assert 0.0 <= score <= 1.0

    def test_workload_scale_diff(self):
        workload = find_program("factor")
        baseline = build_baseline(workload.build())
        khaos = build_obfuscated(workload.build(), obfuscator_for("fufi.ori"))
        result = Asm2Vec().diff(baseline.binary, khaos.binary)
        precision = precision_at_1(result, khaos.provenance)
        assert 0.0 <= precision <= 1.0
