"""Variant cache: keying, LRU behaviour, evaluation-driver wiring, disk persistence."""

import pickle

import pytest

from repro.core.variant_cache import (CACHE_FILE_VERSION, VariantCache,
                                      cache_file_path, config_cache_key,
                                      variant_key)
from repro.evaluation.overhead import build_variant, measure_overhead
from repro.evaluation.precision import measure_precision
from repro.opt.pass_manager import OptOptions
from repro.toolchain import obfuscator_for
from repro.vm.machine import run_program
from repro.workloads.suites import spec2006_programs

WORKLOADS = spec2006_programs()[:2]
LABELS = ("fission", "fufi.ori")


def _overhead_rows(report):
    return [(r.program, r.label, r.baseline_cycles, r.cycles)
            for r in report.rows]


def _precision_rows(report):
    return [(r.program, r.tool, r.label, r.precision, r.similarity_score)
            for r in report.rows]


class TestCacheBasics:
    def test_miss_then_hit(self):
        cache = VariantCache()
        calls = []
        key = ("k",)
        first = cache.get_or_build(key, lambda: calls.append(1) or "built")
        second = cache.get_or_build(key, lambda: calls.append(2) or "rebuilt")
        assert first == second == "built"
        assert calls == [1]
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5
        assert len(cache) == 1 and key in cache

    def test_stats_and_clear(self):
        cache = VariantCache()
        cache.get_or_build(("a",), lambda: 1)
        cache.get_or_build(("a",), lambda: 1)
        stats = cache.stats()
        assert stats == {"entries": 1, "hits": 1, "misses": 1, "hit_rate": 0.5}
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_lru_eviction(self):
        cache = VariantCache(max_entries=2)
        cache.get_or_build(("a",), lambda: "a")
        cache.get_or_build(("b",), lambda: "b")
        cache.get_or_build(("a",), lambda: "a2")   # refresh a
        cache.get_or_build(("c",), lambda: "c")    # evicts b
        assert ("a",) in cache and ("c",) in cache
        assert ("b",) not in cache

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            VariantCache(max_entries=0)


class TestKeys:
    def test_same_configuration_same_key(self):
        wp = WORKLOADS[0]
        assert (variant_key(wp, obfuscator_for("fission"))
                == variant_key(wp, obfuscator_for("fission")))
        assert (variant_key(wp, "baseline", OptOptions())
                == variant_key(wp, "baseline", OptOptions()))

    def test_different_label_seed_options_workload_differ(self):
        wp, other = WORKLOADS
        base = variant_key(wp, obfuscator_for("fission"))
        assert base != variant_key(wp, obfuscator_for("fusion"))
        assert base != variant_key(wp, obfuscator_for("fission", seed=123))
        assert base != variant_key(other, obfuscator_for("fission"))
        assert (variant_key(wp, "baseline", OptOptions())
                != variant_key(wp, "baseline", OptOptions(level=3)))

    def test_profile_knobs_are_part_of_the_key(self):
        """Same (suite, name, seed) but different profile knobs must not collide."""
        import dataclasses
        from repro.workloads.suites import WorkloadProgram
        wp = WORKLOADS[0]
        longer = WorkloadProgram(wp.name, wp.suite, dataclasses.replace(
            wp.profile, iterations=wp.profile.iterations * 10))
        assert (variant_key(wp, "baseline")
                != variant_key(longer, "baseline"))

    def test_ollvm_and_khaos_keys_are_disjoint(self):
        wp = WORKLOADS[0]
        keys = {variant_key(wp, obfuscator_for(label))
                for label in ("sub", "bog", "fla-10", "fission", "fufi.all")}
        assert len(keys) == 5

    def test_config_cache_key_fallback(self):
        class Bare:
            label = "custom"
        key = config_cache_key(Bare())
        assert "Bare" in key and "custom" in key
        assert config_cache_key("baseline") == "baseline"

    def test_config_cache_key_fallback_includes_public_knobs(self):
        """Same label, different knobs, no cache_key(): keys must differ."""
        class Tool:
            label = "tool"

            def __init__(self, ratio):
                self.ratio = ratio
        assert config_cache_key(Tool(0.1)) != config_cache_key(Tool(0.9))
        assert config_cache_key(Tool(0.5)) == config_cache_key(Tool(0.5))


class TestEvaluationWiring:
    def test_build_variant_caches_and_matches_fresh_build(self):
        cache = VariantCache()
        wp = WORKLOADS[0]
        cached = build_variant(wp, "fission", cache=cache)
        again = build_variant(wp, "fission", cache=cache)
        fresh = build_variant(wp, "fission")
        assert cached is again
        assert cache.hits == 1 and cache.misses == 1
        # deterministic builds: the cached artifact equals a fresh build
        assert [f.name for f in cached.binary.functions] == \
               [f.name for f in fresh.binary.functions]

    def test_measure_overhead_report_identical_with_cache(self):
        cache = VariantCache()
        with_cache = measure_overhead(WORKLOADS, labels=LABELS, cache=cache)
        without = measure_overhead(WORKLOADS, labels=LABELS)
        assert _overhead_rows(with_cache) == _overhead_rows(without)
        assert cache.misses == len(WORKLOADS) * (len(LABELS) + 1)
        assert cache.hits == 0

        rerun = measure_overhead(WORKLOADS, labels=LABELS, cache=cache)
        assert _overhead_rows(rerun) == _overhead_rows(without)
        assert cache.hits == len(WORKLOADS) * (len(LABELS) + 1)

    def test_precision_reuses_overhead_variants(self):
        """The figure-8 loop must hit variants built by the figure-6/7 loop."""
        cache = VariantCache()
        measure_overhead(WORKLOADS, labels=LABELS, cache=cache)
        hits_before = cache.hits
        with_cache = measure_precision(WORKLOADS, labels=LABELS, cache=cache)
        assert cache.hits > hits_before        # nonzero figure-8 hit rate
        assert cache.misses == len(WORKLOADS) * (len(LABELS) + 1)
        without = measure_precision(WORKLOADS, labels=LABELS)
        assert _precision_rows(with_cache) == _precision_rows(without)


class TestDiskPersistence:
    def test_save_load_round_trip(self, tmp_path):
        cache = VariantCache()
        wp = WORKLOADS[0]
        built = build_variant(wp, "fission", cache=cache)
        build_variant(wp, "baseline", cache=cache)
        path = str(tmp_path / "variants.pkl")
        cache.save(path)

        loaded = VariantCache.load(path)
        assert len(loaded) == len(cache) == 2
        assert loaded.hits == 0 and loaded.misses == 0   # counters not persisted
        restored = build_variant(wp, "fission", cache=loaded)
        assert loaded.hits == 1 and loaded.misses == 0   # served from disk
        # the restored artifact is semantically the built one
        assert [f.name for f in restored.binary.functions] == \
               [f.name for f in built.binary.functions]
        assert run_program(restored.program).observable() == \
               run_program(built.program).observable()

    def test_loaded_variants_reproduce_reports(self, tmp_path):
        cache = VariantCache()
        reference = measure_overhead(WORKLOADS, labels=LABELS, cache=cache)
        path = str(tmp_path / "variants.pkl")
        cache.save(path)
        loaded = VariantCache.load(path)
        replay = measure_overhead(WORKLOADS, labels=LABELS, cache=loaded)
        assert _overhead_rows(replay) == _overhead_rows(reference)
        assert loaded.misses == 0  # every variant came from disk

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "variants.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"version": CACHE_FILE_VERSION + 1, "key_schema": 1,
                         "entries": []}, fh)
        with pytest.raises(ValueError):
            VariantCache.load(str(path))

    def test_load_rejects_wrong_key_schema(self, tmp_path):
        path = tmp_path / "variants.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"version": CACHE_FILE_VERSION, "key_schema": -1,
                         "entries": []}, fh)
        with pytest.raises(ValueError):
            VariantCache.load(str(path))

    def test_load_rejects_unstamped_payload(self, tmp_path):
        path = tmp_path / "variants.pkl"
        with open(path, "wb") as fh:
            pickle.dump(["not", "a", "cache"], fh)
        with pytest.raises(ValueError):
            VariantCache.load(str(path))

    def test_save_creates_parent_directory(self, tmp_path):
        cache = VariantCache()
        cache.get_or_build(("k",), lambda: "v")
        path = str(tmp_path / "nested" / "dir" / "variants.pkl")
        cache.save(path)
        assert len(VariantCache.load(path)) == 1

    def test_load_respects_max_entries(self, tmp_path):
        cache = VariantCache()
        for i in range(4):
            cache.get_or_build((f"k{i}",), lambda i=i: i)
        path = str(tmp_path / "variants.pkl")
        cache.save(path)
        bounded = VariantCache.load(path, max_entries=2)
        assert len(bounded) == 2
        assert ("k3",) in bounded  # newest entries survive the LRU bound

    def test_cache_file_path(self):
        assert cache_file_path("/tmp/x").endswith("variants.pkl")

    def test_executor_workers_preload_from_cache_dir(self, tmp_path,
                                                     monkeypatch):
        from repro.evaluation.executor import (reset_worker_cache,
                                               worker_cache)
        cache = VariantCache()
        measure_overhead(WORKLOADS[:1], labels=LABELS, cache=cache)
        directory = str(tmp_path)
        cache.save(cache_file_path(directory))

        monkeypatch.setenv("REPRO_VARIANT_CACHE_DIR", directory)
        reset_worker_cache()
        try:
            preloaded = worker_cache()
            assert len(preloaded) == len(cache)
            # a parallel precision run with the cache dir set still matches
            serial = measure_precision(WORKLOADS[:1], labels=LABELS)
            parallel = measure_precision(WORKLOADS[:1], labels=LABELS, jobs=2)
            assert _precision_rows(serial) == _precision_rows(parallel)
        finally:
            reset_worker_cache()
