"""Variant cache: keying, LRU behaviour and evaluation-driver wiring."""

import pytest

from repro.core.variant_cache import VariantCache, config_cache_key, variant_key
from repro.evaluation.overhead import build_variant, measure_overhead
from repro.evaluation.precision import measure_precision
from repro.opt.pass_manager import OptOptions
from repro.toolchain import obfuscator_for
from repro.workloads.suites import spec2006_programs

WORKLOADS = spec2006_programs()[:2]
LABELS = ("fission", "fufi.ori")


def _overhead_rows(report):
    return [(r.program, r.label, r.baseline_cycles, r.cycles)
            for r in report.rows]


def _precision_rows(report):
    return [(r.program, r.tool, r.label, r.precision, r.similarity_score)
            for r in report.rows]


class TestCacheBasics:
    def test_miss_then_hit(self):
        cache = VariantCache()
        calls = []
        key = ("k",)
        first = cache.get_or_build(key, lambda: calls.append(1) or "built")
        second = cache.get_or_build(key, lambda: calls.append(2) or "rebuilt")
        assert first == second == "built"
        assert calls == [1]
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5
        assert len(cache) == 1 and key in cache

    def test_stats_and_clear(self):
        cache = VariantCache()
        cache.get_or_build(("a",), lambda: 1)
        cache.get_or_build(("a",), lambda: 1)
        stats = cache.stats()
        assert stats == {"entries": 1, "hits": 1, "misses": 1, "hit_rate": 0.5}
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_lru_eviction(self):
        cache = VariantCache(max_entries=2)
        cache.get_or_build(("a",), lambda: "a")
        cache.get_or_build(("b",), lambda: "b")
        cache.get_or_build(("a",), lambda: "a2")   # refresh a
        cache.get_or_build(("c",), lambda: "c")    # evicts b
        assert ("a",) in cache and ("c",) in cache
        assert ("b",) not in cache

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            VariantCache(max_entries=0)


class TestKeys:
    def test_same_configuration_same_key(self):
        wp = WORKLOADS[0]
        assert (variant_key(wp, obfuscator_for("fission"))
                == variant_key(wp, obfuscator_for("fission")))
        assert (variant_key(wp, "baseline", OptOptions())
                == variant_key(wp, "baseline", OptOptions()))

    def test_different_label_seed_options_workload_differ(self):
        wp, other = WORKLOADS
        base = variant_key(wp, obfuscator_for("fission"))
        assert base != variant_key(wp, obfuscator_for("fusion"))
        assert base != variant_key(wp, obfuscator_for("fission", seed=123))
        assert base != variant_key(other, obfuscator_for("fission"))
        assert (variant_key(wp, "baseline", OptOptions())
                != variant_key(wp, "baseline", OptOptions(level=3)))

    def test_profile_knobs_are_part_of_the_key(self):
        """Same (suite, name, seed) but different profile knobs must not collide."""
        import dataclasses
        from repro.workloads.suites import WorkloadProgram
        wp = WORKLOADS[0]
        longer = WorkloadProgram(wp.name, wp.suite, dataclasses.replace(
            wp.profile, iterations=wp.profile.iterations * 10))
        assert (variant_key(wp, "baseline")
                != variant_key(longer, "baseline"))

    def test_ollvm_and_khaos_keys_are_disjoint(self):
        wp = WORKLOADS[0]
        keys = {variant_key(wp, obfuscator_for(label))
                for label in ("sub", "bog", "fla-10", "fission", "fufi.all")}
        assert len(keys) == 5

    def test_config_cache_key_fallback(self):
        class Bare:
            label = "custom"
        key = config_cache_key(Bare())
        assert "Bare" in key and "custom" in key
        assert config_cache_key("baseline") == "baseline"


class TestEvaluationWiring:
    def test_build_variant_caches_and_matches_fresh_build(self):
        cache = VariantCache()
        wp = WORKLOADS[0]
        cached = build_variant(wp, "fission", cache=cache)
        again = build_variant(wp, "fission", cache=cache)
        fresh = build_variant(wp, "fission")
        assert cached is again
        assert cache.hits == 1 and cache.misses == 1
        # deterministic builds: the cached artifact equals a fresh build
        assert [f.name for f in cached.binary.functions] == \
               [f.name for f in fresh.binary.functions]

    def test_measure_overhead_report_identical_with_cache(self):
        cache = VariantCache()
        with_cache = measure_overhead(WORKLOADS, labels=LABELS, cache=cache)
        without = measure_overhead(WORKLOADS, labels=LABELS)
        assert _overhead_rows(with_cache) == _overhead_rows(without)
        assert cache.misses == len(WORKLOADS) * (len(LABELS) + 1)
        assert cache.hits == 0

        rerun = measure_overhead(WORKLOADS, labels=LABELS, cache=cache)
        assert _overhead_rows(rerun) == _overhead_rows(without)
        assert cache.hits == len(WORKLOADS) * (len(LABELS) + 1)

    def test_precision_reuses_overhead_variants(self):
        """The figure-8 loop must hit variants built by the figure-6/7 loop."""
        cache = VariantCache()
        measure_overhead(WORKLOADS, labels=LABELS, cache=cache)
        hits_before = cache.hits
        with_cache = measure_precision(WORKLOADS, labels=LABELS, cache=cache)
        assert cache.hits > hits_before        # nonzero figure-8 hit rate
        assert cache.misses == len(WORKLOADS) * (len(LABELS) + 1)
        without = measure_precision(WORKLOADS, labels=LABELS)
        assert _precision_rows(with_cache) == _precision_rows(without)
