"""Tests for CFG, dominators, loops, block frequency, def-use, call graph and
the innocuous-block analysis."""

import pytest

from repro.analysis import (BlockFrequency, CallGraph, ControlFlowGraph,
                            DominatorTree, LoopInfo, allocas_only_used_in,
                            count_innocuous_blocks, innocuous_blocks,
                            is_innocuous_block, region_inputs, region_outputs)
from repro.ir import GlobalVariable, IRBuilder, Module, create_function, I64


def build_loop_function():
    module = Module("m")
    f = create_function(module, "loopy", I64, [I64], ["n"])
    b = IRBuilder(f.entry_block)
    acc = b.alloca(I64, name="acc")
    index = b.alloca(I64, name="i")
    b.store(0, acc)
    b.store(0, index)
    loop = f.add_block("loop")
    body = f.add_block("body")
    done = f.add_block("done")
    b.br(loop)
    b.position_at_end(loop)
    i = b.load(index)
    b.cond_br(b.icmp("slt", i, f.args[0]), body, done)
    b.position_at_end(body)
    b.store(b.add(b.load(acc), i), acc)
    b.store(b.add(i, 1), index)
    b.br(loop)
    b.position_at_end(done)
    b.ret(b.load(acc))
    return module, f, {"loop": loop, "body": body, "done": done}


class TestCFG:
    def test_successors_and_predecessors(self):
        _, f, blocks = build_loop_function()
        cfg = ControlFlowGraph(f)
        assert blocks["body"] in cfg.successors[blocks["loop"]]
        assert blocks["loop"] in cfg.predecessors[blocks["body"]]
        assert f.entry_block in cfg.predecessors[blocks["loop"]]

    def test_reverse_post_order_starts_at_entry(self):
        _, f, _ = build_loop_function()
        rpo = ControlFlowGraph(f).reverse_post_order()
        assert rpo[0] is f.entry_block
        assert len(rpo) == len(f.blocks)

    def test_unreachable_blocks_detected(self):
        module = Module("m")
        f = create_function(module, "f", I64, [])
        IRBuilder(f.entry_block).ret(0)
        dead = f.add_block("dead")
        IRBuilder(dead).ret(1)
        cfg = ControlFlowGraph(f)
        assert dead in cfg.unreachable_blocks()

    def test_exit_blocks(self):
        _, f, blocks = build_loop_function()
        cfg = ControlFlowGraph(f)
        assert cfg.exit_blocks() == [blocks["done"]]


class TestDominators:
    def test_entry_dominates_everything(self):
        _, f, blocks = build_loop_function()
        domtree = DominatorTree(f)
        for block in f.blocks:
            assert domtree.dominates(f.entry_block, block)

    def test_loop_header_dominates_body(self):
        _, f, blocks = build_loop_function()
        domtree = DominatorTree(f)
        assert domtree.dominates(blocks["loop"], blocks["body"])
        assert not domtree.dominates(blocks["body"], blocks["loop"])

    def test_immediate_dominators(self):
        _, f, blocks = build_loop_function()
        domtree = DominatorTree(f)
        assert domtree.immediate_dominator(blocks["body"]) is blocks["loop"]
        assert domtree.immediate_dominator(f.entry_block) is None

    def test_dominated_region_is_subtree(self):
        _, f, blocks = build_loop_function()
        domtree = DominatorTree(f)
        region = domtree.dominated_region(blocks["loop"])
        assert blocks["body"] in region and blocks["done"] in region
        assert f.entry_block not in region


class TestLoopsAndFrequency:
    def test_natural_loop_detected(self):
        _, f, blocks = build_loop_function()
        loops = LoopInfo(f)
        assert len(loops.loops) == 1
        loop = loops.loops[0]
        assert loop.header is blocks["loop"]
        assert blocks["body"] in loop.blocks

    def test_loop_depth(self):
        _, f, blocks = build_loop_function()
        loops = LoopInfo(f)
        assert loops.loop_depth(blocks["body"]) == 1
        assert loops.loop_depth(f.entry_block) == 0

    def test_block_frequency_scales_loop_body(self):
        _, f, blocks = build_loop_function()
        freq = BlockFrequency(f)
        assert freq.get(blocks["body"]) > freq.get(f.entry_block)
        assert freq.get(f.entry_block) == pytest.approx(1.0)

    def test_cold_block_below_threshold(self):
        module = Module("m")
        f = create_function(module, "f", I64, [I64])
        b = IRBuilder(f.entry_block)
        rare = f.add_block("rare")
        common = f.add_block("common")
        b.cond_br(b.icmp("eq", f.args[0], 0), rare, common)
        b.position_at_end(rare)
        b.ret(1)
        b.position_at_end(common)
        b.ret(2)
        freq = BlockFrequency(f)
        assert freq.get(rare) < 1.0


class TestDefUseAndRegions:
    def test_region_inputs_and_outputs(self):
        _, f, blocks = build_loop_function()
        region = [blocks["loop"], blocks["body"], blocks["done"]]
        inputs = region_inputs(region)
        # the two allocas and the argument are defined outside the region
        assert len(inputs) == 3
        outputs = region_outputs(f, region)
        assert outputs == []

    def test_allocas_only_used_in_region(self):
        _, f, blocks = build_loop_function()
        region = [blocks["loop"], blocks["body"], blocks["done"]]
        lazy = allocas_only_used_in(f, region)
        # `acc` is stored once in the entry, so it is not movable; `i` is too
        names = {a.name for a in lazy}
        assert "acc" not in names and "i" not in names


class TestCallGraph:
    def test_direct_edges_and_degrees(self, demo_module):
        graph = CallGraph(demo_module)
        assert graph.calls("main", "classify")
        assert graph.in_degree("classify") == 1
        assert graph.out_degree("main") >= 4

    def test_address_taken_detection(self, demo_module):
        graph = CallGraph(demo_module)
        assert graph.is_address_taken("scale")
        assert graph.is_address_taken("mix")
        assert not graph.is_address_taken("classify")

    def test_directly_related(self, demo_module):
        graph = CallGraph(demo_module)
        assert graph.directly_related("main", "classify")
        assert not graph.directly_related("scale", "mix")


class TestInnocuousAnalysis:
    def test_pure_arithmetic_block_is_innocuous(self, demo_module):
        scale = demo_module.get_function("scale")
        assert is_innocuous_block(scale, scale.entry_block)

    def test_global_store_is_not_innocuous(self):
        module = Module("m")
        counter = GlobalVariable("counter", I64, initializer=0)
        module.add_global(counter)
        f = create_function(module, "bump", I64, [])
        b = IRBuilder(f.entry_block)
        b.store(b.add(b.load(counter), 1), counter)
        b.ret(0)
        assert not is_innocuous_block(f, f.entry_block)
        assert count_innocuous_blocks(f) == 0

    def test_local_store_is_innocuous(self):
        module = Module("m")
        f = create_function(module, "local", I64, [])
        b = IRBuilder(f.entry_block)
        slot = b.alloca(I64)
        b.store(5, slot)
        b.ret(b.load(slot))
        assert innocuous_blocks(f) == [f.entry_block]

    def test_external_call_is_not_innocuous(self, demo_module):
        main = demo_module.get_function("main")
        assert not is_innocuous_block(main, main.entry_block)
