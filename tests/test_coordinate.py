"""Multi-worker matrix coordination: partitioning, bit-identity, interop.

The contracts this file pins down:

* :func:`partition_round_robin` is a deterministic, complete, disjoint
  deal of the shard index space (and degrades gracefully when there are
  more workers than shards);
* a coordinated figure-8/figure-9 run is **bit-identical** to the serial
  reference drivers over the same matrix;
* coordinated runs journal through the same run identity as the serial
  sharded drivers, so serial and coordinated runs resume each other's
  work — and a warm rerun (at any worker count) re-scores zero units;
* the same holds over a loopback ``REPRO_STORE_URL`` remote store — the
  ISSUE's multi-machine acceptance, on one machine.
"""

import os
import sys

import pytest

from repro.evaluation.bintuner_compare import measure_bintuner
from repro.evaluation.checkpoint import ShardRunStats
from repro.evaluation.coordinate import (CoordinatorStats, DEFAULT_WORKERS,
                                         coordinate_tasks,
                                         measure_bintuner_coordinated,
                                         measure_precision_coordinated,
                                         partition_round_robin,
                                         resolve_workers)
from repro.evaluation.diff_sharding import measure_precision_sharded
from repro.evaluation.executor import reset_worker_cache
from repro.evaluation.precision import measure_precision
from repro.workloads.suites import spec2006_programs

SCRIPTS = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "scripts")
sys.path.insert(0, SCRIPTS)

from store_server import StoreServer  # noqa: E402

WORKLOADS = spec2006_programs()[:1]
LABELS = ("fission",)


class TestPartitioning:
    def test_round_robin_deals_interleaved(self):
        assert partition_round_robin(7, 3) == [[0, 3, 6], [1, 4], [2, 5]]

    def test_partitions_are_complete_and_disjoint(self):
        for count in (0, 1, 5, 12, 13):
            for workers in (1, 2, 3, 7):
                parts = partition_round_robin(count, workers)
                dealt = [i for part in parts for i in part]
                assert sorted(dealt) == list(range(count))
                assert len(dealt) == len(set(dealt))

    def test_empty_partitions_dropped(self):
        assert partition_round_robin(2, 5) == [[0], [1]]
        assert partition_round_robin(0, 3) == []

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            partition_round_robin(-1, 2)
        with pytest.raises(ValueError):
            partition_round_robin(4, 0)

    def test_resolve_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_COORD_WORKERS", raising=False)
        assert resolve_workers() == DEFAULT_WORKERS
        monkeypatch.setenv("REPRO_COORD_WORKERS", "5")
        assert resolve_workers() == 5
        assert resolve_workers(3) == 3  # explicit beats the environment

    def test_mismatched_keys_rejected(self, tmp_store):
        with pytest.raises(ValueError):
            coordinate_tasks(len, ["ab", "cd"], ["only-one-key"],
                             ("run", "x"))


class TestCoordinatedLocal:
    """Coordinated == serial over a shared local store tree."""

    def test_fig8_matches_serial_and_warm_rerun_is_free(self, tmp_store):
        serial = measure_precision(WORKLOADS, labels=LABELS)

        cold_stats = CoordinatorStats()
        cold = measure_precision_coordinated(WORKLOADS, labels=LABELS,
                                             workers=2,
                                             coord_stats=cold_stats)
        assert cold.rows == serial.rows
        assert cold_stats.executed == cold_stats.planned > 0
        assert cold_stats.workers == 2
        assert sum(cold_stats.partitions) == cold_stats.planned

        # warm rerun at a *different* width: the journal is keyed by the
        # matrix, not the worker count, so nothing re-executes
        reset_worker_cache()
        warm_stats = CoordinatorStats()
        warm = measure_precision_coordinated(WORKLOADS, labels=LABELS,
                                             workers=3,
                                             coord_stats=warm_stats)
        assert warm.rows == serial.rows
        assert warm_stats.executed == 0
        assert warm_stats.resumed == warm_stats.planned

    def test_serial_sharded_and_coordinated_share_a_journal(self, tmp_store):
        run_stats = ShardRunStats()
        sharded = measure_precision_sharded(WORKLOADS, labels=LABELS,
                                            jobs=1, run_stats=run_stats)
        assert run_stats.executed == run_stats.planned > 0

        # the coordinated run resumes the serial sharded run's journal
        reset_worker_cache()
        coord_stats = CoordinatorStats()
        coordinated = measure_precision_coordinated(
            WORKLOADS, labels=LABELS, workers=2, coord_stats=coord_stats)
        assert coordinated.rows == sharded.rows
        assert coord_stats.executed == 0
        assert coord_stats.resumed == coord_stats.planned

    def test_fig9_matches_serial(self, tmp_store):
        serial = measure_bintuner(WORKLOADS, tuner_iterations=2)

        coord_stats = CoordinatorStats()
        coordinated = measure_bintuner_coordinated(
            WORKLOADS, tuner_iterations=2, workers=2,
            coord_stats=coord_stats)
        assert coordinated.rows == serial.rows
        assert (coordinated.bintuner_overhead_percent
                == serial.bintuner_overhead_percent)
        assert coord_stats.executed == coord_stats.planned > 0

        reset_worker_cache()
        warm_stats = CoordinatorStats()
        warm = measure_bintuner_coordinated(
            WORKLOADS, tuner_iterations=2, workers=2,
            coord_stats=warm_stats)
        assert warm.rows == serial.rows
        assert warm_stats.executed == 0


class TestCoordinatedRemote:
    """The acceptance scenario: fig8 through the coordinator against a
    loopback remote store, bit-identical to the serial local driver."""

    def test_fig8_remote_coordinated_matches_serial(self, tmp_path,
                                                    monkeypatch):
        serial = measure_precision(WORKLOADS, labels=LABELS)

        root = str(tmp_path / "served")
        with StoreServer(root) as server:
            monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
            monkeypatch.delenv("REPRO_VARIANT_CACHE_DIR", raising=False)
            monkeypatch.delenv("REPRO_STORE_CACHE_DIR", raising=False)
            monkeypatch.delenv("REPRO_FAULTS", raising=False)
            monkeypatch.setenv("REPRO_STORE_URL", server.url)
            monkeypatch.setenv("REPRO_REMOTE_BACKOFF", "0.001")
            reset_worker_cache()
            try:
                cold_stats = CoordinatorStats()
                cold = measure_precision_coordinated(
                    WORKLOADS, labels=LABELS, workers=2,
                    coord_stats=cold_stats)
                assert cold.rows == serial.rows
                assert cold_stats.executed == cold_stats.planned > 0

                reset_worker_cache()
                warm_stats = CoordinatorStats()
                warm = measure_precision_coordinated(
                    WORKLOADS, labels=LABELS, workers=2,
                    coord_stats=warm_stats)
                assert warm.rows == serial.rows
                assert warm_stats.executed == 0
                assert warm_stats.resumed == warm_stats.planned
            finally:
                reset_worker_cache()
