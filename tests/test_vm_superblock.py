"""Differential tests: superblock-dispatch VM vs. compiled and legacy tiers.

The superblock tier fuses hot block chains into generated trace functions
(with guarded side exits through conditional branches) and batches whole
chains' step/cycle accounting.  Everything the evaluation observes must stay
bit-for-bit identical to both reference tiers: exit value, output stream,
cycle count, step count, instruction count and call count — across every
workload of every suite, across obfuscated (fission / fusion / flattened)
control flow, across batched ``run_many`` re-runs of one interpreter, and
at nasty boundaries (step limit inside a fused chain, mid-block aborts,
IR mutated under live traces).
"""

import pytest

from repro.analysis.manager import PRESERVE_ALL, AnalysisManager
from repro.baselines import ControlFlowFlattening
from repro.core.obfuscator import obfuscate
from repro.core.variant_cache import VariantCache
from repro.evaluation.sharding import ShardBatch
from repro.ir import (FunctionType, I64, IRBuilder, Module, Program,
                      create_function)
from repro.opt.pipelines import optimize_program
from repro.vm import (Interpreter, StaleTraceError, StepLimitExceeded,
                      VMBatch, run_program)
from repro.vm.machine import ExecutionError
from repro.workloads.suites import load_suite, spec2006_programs, suite_names

DISPATCHES = ("legacy", "compiled", "superblock")


def result_tuple(result):
    return (result.exit_value, tuple(result.output), result.cycles,
            result.instructions_executed, result.call_count, result.steps)


def all_workloads():
    for name in suite_names():
        for workload in load_suite(name):
            yield workload


def tier_results(program_factory):
    return {dispatch: result_tuple(run_program(program_factory(),
                                               dispatch=dispatch))
            for dispatch in DISPATCHES}


def hot_loop_program(iterations=400):
    """A multi-block counting loop: the loop's body/step blocks form a
    fusable chain behind the loop head's conditional branch, with the exit
    arm as the side exit taken once per call."""
    module = Module("hot")
    f = create_function(module, "main", I64, [])
    loop = f.add_block("loop")
    body = f.add_block("body")
    step = f.add_block("step")
    done = f.add_block("done")
    b = IRBuilder(f.entry_block)
    slot = b.alloca(I64, name="n")
    b.store(0, slot)
    b.br(loop)
    b.position_at_end(loop)
    n = b.load(slot)
    b.cond_br(b.icmp("slt", n, iterations), body, done)
    b.position_at_end(body)
    b.store(b.add(b.load(slot), 1), slot)
    b.br(step)
    b.position_at_end(step)
    b.store(b.mul(b.sdiv(b.load(slot), 1), 1), slot)
    b.br(loop)
    b.position_at_end(done)
    b.ret(b.load(slot))
    return Program("hot", [module])


def input_sum_program():
    """Sums the input stream through the ``input_len``/``input_i64``
    intrinsics — run_many batches must feed each run its own inputs."""
    module = Module("insum")
    input_len = module.declare_function("input_len", FunctionType(I64, []))
    input_i64 = module.declare_function("input_i64", FunctionType(I64, [I64]))
    putint = module.declare_function("putint", FunctionType(I64, [I64]))
    f = create_function(module, "main", I64, [])
    loop = f.add_block("loop")
    body = f.add_block("body")
    done = f.add_block("done")
    b = IRBuilder(f.entry_block)
    count = b.call(input_len, [])
    i_slot = b.alloca(I64, name="i")
    acc_slot = b.alloca(I64, name="acc")
    b.store(0, i_slot)
    b.store(0, acc_slot)
    b.br(loop)
    b.position_at_end(loop)
    i = b.load(i_slot)
    b.cond_br(b.icmp("slt", i, count), body, done)
    b.position_at_end(body)
    b.store(b.add(b.load(acc_slot), b.call(input_i64, [b.load(i_slot)])),
            acc_slot)
    b.store(b.add(b.load(i_slot), 1), i_slot)
    b.br(loop)
    b.position_at_end(done)
    acc = b.load(acc_slot)
    b.call(putint, [acc])
    b.ret(acc)
    return Program("insum", [module])


class TestEveryWorkload:
    @pytest.mark.parametrize("workload", list(all_workloads()),
                             ids=lambda wp: f"{wp.suite}-{wp.name}")
    def test_identical_on_workload(self, workload):
        results = tier_results(workload.build)
        assert results["superblock"] == results["legacy"]
        assert results["superblock"] == results["compiled"]


class TestBatchedRunMany:
    def test_warm_reruns_stay_identical(self):
        """Re-running one interpreter heats traces past the JIT threshold;
        every later (fused) run must still match a fresh legacy run."""
        for workload in (load_suite("spec2006")[0], load_suite("coreutils")[0],
                         load_suite("embedded")[0]):
            reference = result_tuple(run_program(workload.build(),
                                                 dispatch="legacy"))
            interp = Interpreter(workload.build(), dispatch="superblock")
            for result in interp.run_many([()] * 6):
                assert result_tuple(result) == reference

    def test_run_many_feeds_each_run_its_inputs(self):
        program_sets = [(1, 2, 3), (), (5,), (7, 8, 9, 10)]
        references = [result_tuple(run_program(input_sum_program(),
                                               inputs=inputs,
                                               dispatch="legacy"))
                      for inputs in program_sets]
        for dispatch in DISPATCHES:
            interp = Interpreter(input_sum_program(), dispatch=dispatch)
            got = [result_tuple(r) for r in interp.run_many(program_sets)]
            assert got == references

    def test_hot_chain_actually_fuses(self):
        program = hot_loop_program()
        reference = result_tuple(run_program(hot_loop_program(),
                                             dispatch="legacy"))
        interp = Interpreter(program, dispatch="superblock")
        for result in interp.run_many([()] * 4):
            assert result_tuple(result) == reference
        fused = [t for t in interp._traces.values() if t.fast is not None]
        assert fused, "the hot loop never tripped the JIT threshold"
        assert any(len(t.blocks) > 1 for t in fused), \
            "no multi-block chain was fused"
        # the loop head's chain crosses its conditional branch, so the
        # generated source must carry a credit-back side exit
        assert any(len(t.blocks) > 1 and "return (" in (t.source or "")
                   for t in fused)


class TestObfuscatedVariants:
    @pytest.mark.parametrize("mode", ["fission", "fusion", "fufi.sep",
                                      "fufi.ori", "fufi.all"])
    def test_identical_after_khaos_and_o2(self, mode):
        workload = load_suite("spec2006")[0]
        optimized = optimize_program(obfuscate(workload.build(),
                                               mode=mode).program)
        results = {dispatch: result_tuple(run_program(optimized,
                                                      dispatch=dispatch))
                   for dispatch in DISPATCHES}
        assert results["superblock"] == results["legacy"]
        assert results["superblock"] == results["compiled"]

    def test_identical_after_control_flow_flattening(self):
        """Flattened functions (dispatcher + switch) are the adversarial
        case for chain selection: every block flows back through the
        dispatcher."""
        workload = load_suite("coreutils")[0]
        program = workload.build()
        ControlFlowFlattening(ratio=1.0).run(program)
        reference = result_tuple(run_program(program, dispatch="legacy"))
        assert result_tuple(run_program(program,
                                        dispatch="compiled")) == reference
        interp = Interpreter(program, dispatch="superblock")
        for result in interp.run_many([()] * 4):
            assert result_tuple(result) == reference


class TestEdgeSemantics:
    def test_step_limit_fires_inside_a_fused_chain(self):
        """A limit landing mid-chain must stop at exactly ``limit + 1``
        steps on every tier — the fused fast path may only run when the
        whole chain fits under the limit."""
        full = run_program(hot_loop_program(), dispatch="legacy")
        limit = full.steps // 2
        outcomes = {}
        for dispatch in DISPATCHES:
            interp = Interpreter(hot_loop_program(), max_steps=limit,
                                 dispatch=dispatch)
            with pytest.raises(StepLimitExceeded):
                interp.run()
            first = interp.steps
            # second run on the same (now trace-warm) interpreter
            interp.reset()
            with pytest.raises(StepLimitExceeded):
                interp.run()
            outcomes[dispatch] = (first, interp.steps)
        assert outcomes["legacy"] == outcomes["compiled"] \
            == outcomes["superblock"] == (limit + 1, limit + 1)

    def test_mid_block_abort_reports_the_same_error(self):
        module = Module("oob")
        f = create_function(module, "main", I64, [])
        b = IRBuilder(f.entry_block)
        buf = b.alloca(I64, name="buf")
        b.store(1, buf)
        wild = b.gep(buf, 5)
        b.store(2, wild)  # out of bounds: aborts mid-block
        b.ret(0)
        program = Program("oob", [module])
        messages = set()
        for dispatch in DISPATCHES:
            with pytest.raises(ExecutionError) as err:
                run_program(program, dispatch=dispatch)
            messages.add(str(err.value))
        assert len(messages) == 1
        assert "out-of-bounds store" in messages.pop()


class TestInvalidation:
    def _warm_interpreter(self, **kwargs):
        workload = load_suite("coreutils")[0]
        interp = Interpreter(workload.build(), dispatch="superblock",
                             **kwargs)
        interp.run_many([()] * 3)
        assert interp._traces
        return interp

    def test_invalidate_compiled_drops_traces(self):
        interp = self._warm_interpreter()
        head = next(iter(interp._traces))
        function = head.parent
        interp.invalidate_compiled(function)
        for trace_head, trace in interp._traces.items():
            assert trace_head.parent is not function
            assert all(block.parent is not function
                       for block in trace.blocks)
        interp.invalidate_compiled()
        assert not interp._traces
        assert not interp._compiled_blocks
        assert not interp._block_heat

    def test_analysis_manager_invalidation_reaches_traces(self):
        manager = AnalysisManager()
        interp = self._warm_interpreter(analyses=manager)
        head = next(iter(interp._traces))
        function = head.parent
        manager.invalidate(function)
        assert all(h.parent is not function
                   and all(b.parent is not function for b in t.blocks)
                   for h, t in interp._traces.items())
        # PRESERVE_ALL asserts "nothing structural changed": traces stay
        interp.reset()
        interp.run()
        kept = dict(interp._traces)
        manager.invalidate(function, preserve=PRESERVE_ALL)
        assert interp._traces == kept

    def test_dead_listeners_are_pruned(self):
        manager = AnalysisManager()
        interp = self._warm_interpreter(analyses=manager)
        function = next(iter(interp._traces)).parent
        del interp
        manager.invalidate(function)  # must not blow up on a dead weakref

    def test_stale_trace_check_catches_unreported_mutation(self):
        interp = self._warm_interpreter(verify_traces=True)
        interp.reset()
        interp.run()  # verified clean before the mutation
        head = next(iter(interp._traces))
        # dead code past the terminator, but the block's shape changed
        head.instructions.append(head.instructions[0])
        interp.reset()
        with pytest.raises(StaleTraceError):
            interp.run()
        # reporting the mutation rebuilds the trace and clears the fault
        interp.invalidate_compiled(head.parent)
        interp.reset()
        interp.run()

    def test_verify_traces_env_var(self, monkeypatch):
        workload = load_suite("coreutils")[0]
        monkeypatch.setenv("REPRO_VM_VERIFY_TRACES", "1")
        assert Interpreter(workload.build()).verify_traces is True
        monkeypatch.setenv("REPRO_VM_VERIFY_TRACES", "0")
        assert Interpreter(workload.build()).verify_traces is False
        monkeypatch.delenv("REPRO_VM_VERIFY_TRACES")
        assert Interpreter(workload.build()).verify_traces is False


class TestDispatchSelection:
    def test_env_var_selects_superblock(self, monkeypatch):
        workload = load_suite("coreutils")[1]
        monkeypatch.setenv("REPRO_VM_DISPATCH", "superblock")
        interp = Interpreter(workload.build())
        assert interp.dispatch == "superblock"
        assert interp.compiled is True
        monkeypatch.setenv("REPRO_VM_DISPATCH", "warp-drive")
        assert Interpreter(workload.build()).dispatch == "compiled"

    def test_explicit_argument_beats_env(self, monkeypatch):
        workload = load_suite("coreutils")[1]
        monkeypatch.setenv("REPRO_VM_DISPATCH", "legacy")
        interp = Interpreter(workload.build(), dispatch="superblock")
        assert interp.dispatch == "superblock"

    def test_unknown_explicit_dispatch_raises(self):
        workload = load_suite("coreutils")[1]
        with pytest.raises(ValueError):
            Interpreter(workload.build(), dispatch="turbo")


class TestBatchedMeasurement:
    def test_vmbatch_run_many_memoises_input_batches(self):
        program = input_sum_program()
        sets = ((1, 2, 3), (4, 5))
        batch = VMBatch(dispatch="superblock")
        first = batch.run_many(program, sets)
        again = batch.run_many(program, sets)
        assert batch.interpreters == 1
        assert batch.executions == len(sets)
        assert batch.memo_hits == 1
        assert [r.cycles for r in first] == [r.cycles for r in again]
        for inputs, result in zip(sets, first):
            reference = run_program(input_sum_program(), inputs=inputs)
            assert result_tuple(result) == result_tuple(reference)
        # a different input batch is a different measurement
        batch.run_many(program, ((9,),))
        assert batch.executions == len(sets) + 1

    def test_shardbatch_superblock_rows_match_serial_reference(self):
        workload = spec2006_programs()[0]
        labels = ("fission", "fufi.ori")
        reference = ShardBatch(workload, None, VariantCache()).rows(labels)
        batch = ShardBatch(workload, None, VariantCache(),
                           input_sets=((), ()), dispatch="superblock")
        assert batch.rows(labels) == reference
        # rows ran the whole two-input batch per variant, one interpreter each
        assert batch.vm.executions == 2 * (len(labels) + 1)
        assert batch.vm.interpreters == len(labels) + 1
