"""Property-based round-trip tests for ``repro.store.keys``.

Seeded stdlib-``random`` generators (no extra dependencies) drive the three
canonicalization guarantees the store's content addressing rests on:

* **order-insensitivity** — ``_freeze`` canonicalizes dict/config ordering,
  so two logically identical configurations built in different insertion
  orders freeze (and hash) identically;
* **collision-freedom** — structurally distinct configurations never share a
  canonical key or a :func:`~repro.store.artifact_store.store_digest`;
* **cross-process stability** — digests are pure functions of the key value
  (SHA-256 over a deterministic textual form), so a spawned interpreter with
  a different hash seed computes the same digests.
"""

import dataclasses
import json
import multiprocessing
import random
from typing import Optional

from repro.store import canonical_key, store_digest, variant_key
from repro.store.keys import _freeze
from repro.workloads.suites import spec2006_programs

SEED = 0x5EED0C0
ROUNDS = 60


@dataclasses.dataclass
class FakeOptions:
    """A stand-in for OptOptions-like dataclass configs in generated keys."""

    level: int = 2
    lto: bool = True
    inline_threshold: Optional[int] = None
    tag: str = "o2"


def random_scalar(rng: random.Random):
    return rng.choice([
        rng.randint(-1000, 1000),
        round(rng.uniform(-10.0, 10.0), 6),
        rng.choice([True, False, None]),
        "s" + str(rng.randint(0, 99)),
    ])


def random_value(rng: random.Random, depth: int = 0):
    if depth >= 2 or rng.random() < 0.5:
        return random_scalar(rng)
    if rng.random() < 0.5:
        return [random_value(rng, depth + 1) for _ in range(rng.randint(0, 3))]
    return {f"k{i}": random_value(rng, depth + 1)
            for i in range(rng.randint(0, 3))}


def random_config(rng: random.Random) -> dict:
    return {f"field{i}": random_value(rng)
            for i in range(rng.randint(1, 5))}


def shuffled(config: dict, rng: random.Random) -> dict:
    """The same mapping rebuilt in a random insertion order (recursively)."""
    items = [(k, shuffled(v, rng) if isinstance(v, dict) else v)
             for k, v in config.items()]
    rng.shuffle(items)
    return dict(items)


class TestFreezeCanonicalization:
    def test_dict_freeze_is_insertion_order_insensitive(self):
        rng = random.Random(SEED)
        for _ in range(ROUNDS):
            config = random_config(rng)
            assert _freeze(shuffled(config, rng)) == _freeze(config)

    def test_freeze_is_stable_across_calls(self):
        rng = random.Random(SEED + 1)
        for _ in range(ROUNDS):
            config = random_config(rng)
            assert _freeze(config) == _freeze(config)
            assert canonical_key(_freeze(config)) == canonical_key(_freeze(config))

    def test_lists_and_tuples_freeze_identically(self):
        rng = random.Random(SEED + 2)
        for _ in range(ROUNDS):
            values = [random_scalar(rng) for _ in range(rng.randint(0, 5))]
            assert _freeze(values) == _freeze(tuple(values))

    def test_dataclass_freeze_round_trips_every_field(self):
        rng = random.Random(SEED + 3)
        for _ in range(ROUNDS):
            options = FakeOptions(level=rng.randint(0, 3),
                                  lto=rng.random() < 0.5,
                                  inline_threshold=rng.choice([None, 25, 100]),
                                  tag="t" + str(rng.randint(0, 9)))
            frozen = _freeze(options)
            assert frozen == _freeze(FakeOptions(**dataclasses.asdict(options)))
            # every field value is reachable in the frozen form
            names = {entry[0] for entry in frozen[1:]}
            assert names == {f.name for f in dataclasses.fields(options)}

    def test_dataclass_field_changes_change_the_digest(self):
        base = FakeOptions()
        for change in ({"level": 3}, {"lto": False},
                       {"inline_threshold": 25}, {"tag": "o3"}):
            other = dataclasses.replace(base, **change)
            assert store_digest("variant", _freeze(other)) != \
                store_digest("variant", _freeze(base)), change


class TestCollisionFreedom:
    def test_distinct_random_configs_never_collide(self):
        """N structurally distinct configs → N distinct digests.

        Distinctness is established through an *independent* canonical form
        (sorted JSON), so the assertion cannot be circular through
        ``_freeze`` itself.
        """
        rng = random.Random(SEED + 4)
        seen_json = {}
        digests = {}
        while len(seen_json) < 200:
            config = random_config(rng)
            text = json.dumps(config, sort_keys=True)
            if text in seen_json:
                continue
            seen_json[text] = config
            digest = store_digest("variant", _freeze(config))
            assert digest not in digests, (
                f"digest collision between {config!r} "
                f"and {digests[digest]!r}")
            digests[digest] = config

    def test_type_confusable_scalars_never_collide(self):
        for a, b in ((1, "1"), (1, 1.0), (True, 1), (False, 0),
                     (None, "None"), ("", ()), (0, "")):
            assert canonical_key(_freeze((a,))) != canonical_key(_freeze((b,)))


def _digests_in_subprocess(frozen_keys, queue):
    queue.put([store_digest("variant", key) for key in frozen_keys])


class TestCrossProcessStability:
    def test_variant_key_digests_stable_across_processes(self):
        """A spawned interpreter (fresh hash randomization) must address the
        same keys at the same digests — the multi-machine store contract."""
        rng = random.Random(SEED + 5)
        keys = [variant_key(workload, "baseline")
                for workload in spec2006_programs()[:2]]
        keys += [_freeze(random_config(rng)) for _ in range(10)]
        local = [store_digest("variant", key) for key in keys]
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        proc = ctx.Process(target=_digests_in_subprocess, args=(keys, queue))
        proc.start()
        remote = queue.get(timeout=60)
        proc.join(timeout=60)
        assert proc.exitcode == 0
        assert remote == local

    def test_variant_key_is_reproducible_per_workload(self):
        for workload in spec2006_programs()[:3]:
            assert variant_key(workload, "baseline") == \
                variant_key(workload, "baseline")
        a, b = spec2006_programs()[:2]
        assert store_digest("variant", variant_key(a, "baseline")) != \
            store_digest("variant", variant_key(b, "baseline"))
