"""Tests for the kernel library, the synthesiser and the named suites."""

import pytest

from repro.ir import assert_valid
from repro.vm import run_program
from repro.workloads import (COREUTILS_8_32, EMBEDDED_VULNERABILITIES,
                             SPEC_CPU_2006, SPEC_CPU_2017, ProgramProfile,
                             build_kernel, coreutils_programs,
                             embedded_programs, find_program, kernel_names,
                             load_suite, spec2006_programs, spec2017_programs,
                             suite_names, synthesize_program)
import random

from repro.ir import Module


class TestKernels:
    @pytest.mark.parametrize("kind", kernel_names())
    def test_kernel_builds_and_runs(self, kind):
        module = Module("m")
        rng = random.Random(7)
        function = build_kernel(kind, module, f"{kind}_under_test", rng)
        assert_valid(function)
        assert function.block_count() >= 1

    def test_kernel_library_is_reasonably_large(self):
        assert len(kernel_names()) >= 15

    def test_kernels_are_deterministic_for_same_seed(self):
        first = build_kernel("checksum", Module("a"), "k", random.Random(3))
        second = build_kernel("checksum", Module("b"), "k", random.Random(3))
        assert ([i.opcode for i in first.instructions()]
                == [i.opcode for i in second.instructions()])


class TestSynthesiser:
    def test_program_is_valid_and_runs(self):
        profile = ProgramProfile(name="unit", suite="test", seed=5,
                                 kernel_count=6, driver_count=2, iterations=2)
        program = synthesize_program(profile)
        assert_valid(program)
        result = run_program(program)
        assert result.output  # main prints observable values

    def test_two_module_layout(self):
        profile = ProgramProfile(name="unit2", suite="test", seed=5)
        program = synthesize_program(profile)
        assert len(program.modules) == 2

    def test_synthesis_is_deterministic(self):
        profile = ProgramProfile(name="same", suite="test", seed=9)
        first = run_program(synthesize_program(profile))
        second = run_program(synthesize_program(profile))
        assert first.observable() == second.observable()

    def test_special_kernels_included(self):
        profile = ProgramProfile(name="unit3", suite="test", seed=1)
        program = synthesize_program(profile)
        names = {f.name for f in program.defined_functions()}
        assert "setjmp_guard_fn" in names
        assert "eh_pair_fn" in names

    def test_dispatcher_uses_indirect_calls(self):
        from repro.ir import Call
        profile = ProgramProfile(name="unit4", suite="test", seed=2)
        program = synthesize_program(profile)
        dispatcher = program.find_function("dispatch_op")
        assert dispatcher is not None
        assert any(isinstance(i, Call) and not i.is_direct
                   for i in dispatcher.instructions())


class TestSuites:
    def test_suite_sizes_match_the_paper(self):
        assert len(SPEC_CPU_2006) == 19
        assert len(SPEC_CPU_2017) == 28
        assert len(COREUTILS_8_32) == 108
        assert len(EMBEDDED_VULNERABILITIES) == 5

    def test_suite_loaders(self):
        assert len(spec2006_programs()) == 19
        assert len(spec2017_programs()) == 28
        assert len(coreutils_programs()) == 108
        assert len(embedded_programs()) == 5
        assert set(suite_names()) == {"spec2006", "spec2017", "coreutils",
                                      "embedded"}

    def test_load_suite_aliases(self):
        assert len(load_suite("t1")) == 47
        assert len(load_suite("t2")) == 108
        assert len(load_suite("t3")) == 5
        with pytest.raises(KeyError):
            load_suite("spec2049")

    def test_find_program(self):
        assert find_program("401.bzip2").suite == "spec2006"
        assert find_program("ls").suite == "coreutils"
        with pytest.raises(KeyError):
            find_program("not-a-program")

    def test_table3_vulnerable_functions_present(self):
        total_functions = 0
        total_cves = set()
        for workload in embedded_programs():
            program = workload.build()
            for name in workload.vulnerable_functions:
                function = program.find_function(name)
                assert function is not None, name
                assert function.attributes.get("vulnerable")
                total_functions += 1
                total_cves.update(function.attributes["cve"])
        # Table 3: 14 functions, 19 CVEs
        assert total_functions == 14
        assert len(total_cves) == 19

    def test_spec_programs_are_larger_than_coreutils(self):
        spec = find_program("403.gcc").build()
        core = find_program("true").build()
        assert len(spec.defined_functions()) > len(core.defined_functions())

    def test_workload_builds_are_deterministic(self):
        first = run_program(find_program("429.mcf").build())
        second = run_program(find_program("429.mcf").build())
        assert first.observable() == second.observable()
