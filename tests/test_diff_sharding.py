"""Function-granularity diff sharding: contract, merge identity, store reuse.

The serial drivers (``measure_precision``/``measure_escape``/
``measure_bintuner``) are the differential references; the sharded scheduler
(:mod:`repro.evaluation.diff_sharding`) must reproduce their reports
bit-for-bit from any partition, serially or across processes, cold or over a
warm shared store — and a warm store must serve every unit without scoring a
pair or rebuilding a single ``FeatureIndex`` payload.
"""

import pytest

from repro.diffing import (BinDiff, DeepBinDiff, all_differs,
                           use_indexed_features)
from repro.diffing.base import PartialDiff
from repro.evaluation import (figure8, measure_bintuner, measure_escape,
                              measure_precision)
from repro.evaluation.diff_sharding import (DEFAULT_SHARDS_PER_CELL,
                                            DiffShardStats,
                                            measure_bintuner_sharded,
                                            measure_escape_sharded,
                                            measure_precision_sharded,
                                            resolve_diff_shards,
                                            shard_diff_matrix)
from repro.evaluation.executor import reset_worker_cache
from repro.store import KIND_FEATURES, ArtifactStore
from repro.toolchain import build_baseline, build_obfuscated, obfuscator_for
from repro.workloads.suites import embedded_programs, spec2006_programs
from tests.conftest import build_demo_program

WORKLOADS = spec2006_programs()[:2]
LABELS = ("fission", "fufi.ori")


@pytest.fixture(scope="module")
def demo_pair():
    baseline = build_baseline(build_demo_program())
    variant = build_obfuscated(build_demo_program(), obfuscator_for("fufi.all"))
    return baseline.binary, variant.binary


def _precision_rows(report):
    return [(r.program, r.suite, r.tool, r.label, r.precision,
             r.similarity_score) for r in report.rows]


def _escape_rows(report):
    return [(r.program, r.function, r.tool, r.label, r.rank_of_correct)
            for r in report.rows]


class TestPartialContract:
    @pytest.mark.parametrize("differ", all_differs(), ids=lambda d: d.name)
    def test_merge_partials_reassembles_the_serial_diff(self, differ,
                                                        demo_pair):
        original, obfuscated = demo_pair
        reference = differ.diff(original, obfuscated)
        units = differ.shard_units(original)
        if differ.shard_granularity == "function":
            partials = [differ.partial_diff(original, obfuscated, units[k::3])
                        for k in range(3)]
        else:
            partials = [differ.partial_diff(original, obfuscated)]
        merged = differ.merge_partials(partials)
        assert merged.matches == reference.matches
        assert merged.similarity_score == reference.similarity_score
        assert (merged.tool, merged.original, merged.obfuscated) == \
            (reference.tool, reference.original, reference.obfuscated)

    @pytest.mark.parametrize("differ", all_differs(), ids=lambda d: d.name)
    def test_partition_choice_cannot_change_the_merge(self, differ, demo_pair):
        """Any partition (including reversed shard order) merges identically."""
        original, obfuscated = demo_pair
        if differ.shard_granularity != "function":
            pytest.skip("whole-pair tools have a single partition")
        units = differ.shard_units(original)
        by_threes = [differ.partial_diff(original, obfuscated, units[k::3])
                     for k in range(3)]
        one_by_one = [differ.partial_diff(original, obfuscated, [unit])
                      for unit in units]
        merged_a = differ.merge_partials(list(reversed(by_threes)))
        merged_b = differ.merge_partials(one_by_one)
        assert merged_a.matches == merged_b.matches
        assert merged_a.similarity_score == merged_b.similarity_score

    def test_shard_units_are_source_functions_in_rank_order(self, demo_pair):
        original, _obfuscated = demo_pair
        differ = BinDiff()
        assert differ.shard_units(original) == \
            [f.name for f in original.functions]

    def test_deepbindiff_falls_back_to_binary_granularity(self, demo_pair):
        original, obfuscated = demo_pair
        differ = DeepBinDiff()
        assert differ.shard_granularity == "binary"
        partial = differ.partial_diff(original, obfuscated, ["ignored"])
        assert partial.sources == tuple(differ.shard_units(original))
        assert partial.similarity_score is not None

    def test_partial_diff_rejects_unknown_sources(self, demo_pair):
        original, obfuscated = demo_pair
        with pytest.raises(ValueError, match="unknown source"):
            BinDiff().partial_diff(original, obfuscated, ["no_such_function"])

    def test_merge_rejects_uncovered_units(self, demo_pair):
        original, obfuscated = demo_pair
        differ = BinDiff()
        units = differ.shard_units(original)
        partial = differ.partial_diff(original, obfuscated, units[1:])
        with pytest.raises(ValueError, match="no score"):
            differ.merge_partials([partial])

    def test_merge_rejects_double_covered_units(self, demo_pair):
        original, obfuscated = demo_pair
        differ = BinDiff()
        units = differ.shard_units(original)
        whole = differ.partial_diff(original, obfuscated, units)
        extra = differ.partial_diff(original, obfuscated, units[:1])
        with pytest.raises(ValueError, match="two partials"):
            differ.merge_partials([whole, extra])

    def test_merge_rejects_mismatched_pairs(self, demo_pair):
        original, obfuscated = demo_pair
        differ = BinDiff()
        partial = differ.partial_diff(original, obfuscated)
        other = PartialDiff(tool=differ.name, original="other",
                            obfuscated=partial.obfuscated,
                            units=partial.units, sources=(),
                            matches={})
        with pytest.raises(ValueError, match="different pairs"):
            differ.merge_partials([partial, other])

    def test_cache_keys_are_stable_and_config_sensitive(self):
        from repro.diffing import Asm2Vec
        from repro.store import canonical_key
        keys = {differ.name: differ.cache_key() for differ in all_differs()}
        assert len(set(keys.values())) == len(keys)       # tools never collide
        for key in keys.values():
            assert canonical_key(key) == canonical_key(key)  # value-based
        assert Asm2Vec(walks=9).cache_key() != Asm2Vec().cache_key()


class TestShardPlanning:
    def test_partition_is_deterministic(self):
        differs = all_differs()
        assert shard_diff_matrix(WORKLOADS, LABELS, differs) == \
            shard_diff_matrix(WORKLOADS, LABELS, differs)

    def test_function_tools_split_binary_tools_do_not(self):
        shards = shard_diff_matrix(WORKLOADS[:1], ("fission",),
                                   [BinDiff(), DeepBinDiff()],
                                   shards_per_cell=4)
        counts = {}
        for _w, _label, differ, _opts, _index, count in shards:
            counts[differ.name] = count
        assert counts == {"BinDiff": 4, "DeepBinDiff": 1}
        assert len(shards) == 4 + 1

    def test_resolve_diff_shards_defaults_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_DIFF_SHARDS", raising=False)
        assert resolve_diff_shards() == DEFAULT_SHARDS_PER_CELL
        monkeypatch.setenv("REPRO_DIFF_SHARDS", "5")
        assert resolve_diff_shards() == 5
        assert resolve_diff_shards(3) == 3  # explicit wins

    def test_resolve_diff_shards_rejects_garbage(self, monkeypatch):
        for bad in (0, -2, 1.5, "4", True):
            with pytest.raises(ValueError, match="positive integer"):
                resolve_diff_shards(bad)
        monkeypatch.setenv("REPRO_DIFF_SHARDS", "many")
        with pytest.raises(ValueError, match="REPRO_DIFF_SHARDS"):
            resolve_diff_shards()


class TestPrecisionSharded:
    def test_serial_shards_equal_the_reference(self):
        serial = measure_precision(WORKLOADS[:1], labels=LABELS)
        sharded = measure_precision_sharded(WORKLOADS[:1], labels=LABELS,
                                            jobs=1)
        assert _precision_rows(sharded) == _precision_rows(serial)

    def test_jobs2_equals_the_reference(self):
        serial = measure_precision(WORKLOADS, labels=LABELS)
        parallel = measure_precision_sharded(WORKLOADS, labels=LABELS, jobs=2)
        assert _precision_rows(parallel) == _precision_rows(serial)
        assert parallel.matrix() == serial.matrix()

    def test_single_function_shards_equal_the_reference(self):
        """The finest partition — one source function per shard."""
        serial = measure_precision(WORKLOADS[:1], labels=("fission",))
        finest = measure_precision_sharded(WORKLOADS[:1], labels=("fission",),
                                           jobs=1, shards_per_cell=64)
        assert _precision_rows(finest) == _precision_rows(serial)

    def test_figure8_jobs2_through_function_shards_is_bit_identical(self):
        """The acceptance criterion: figure8(jobs=2) — which routes through
        the function-granularity scheduler — equals the serial reference."""
        kwargs = dict(limit_spec=1, limit_coreutils=1, labels=LABELS)
        serial = figure8(**kwargs)
        parallel = figure8(jobs=2, **kwargs)
        assert _precision_rows(parallel) == _precision_rows(serial)
        assert parallel.matrix() == serial.matrix()


class TestSharedStoreReuse:
    def test_warm_store_serves_every_unit_and_rebuilds_no_features(
            self, tmp_store):
        serial = measure_precision(WORKLOADS[:1], labels=LABELS)
        cold_stats = DiffShardStats()
        cold = measure_precision_sharded(WORKLOADS[:1], labels=LABELS,
                                         jobs=1, stats=cold_stats)
        assert _precision_rows(cold) == _precision_rows(serial)
        assert cold_stats.units_scored == cold_stats.units_total > 0
        if use_indexed_features():
            # the legacy path extracts per diff and memoises nothing, so
            # only the indexed path has feature payloads to persist
            assert cold_stats.features_persisted > 0
        assert cold_stats.diff_payloads_persisted > 0

        reset_worker_cache()
        warm_stats = DiffShardStats()
        warm = measure_precision_sharded(WORKLOADS[:1], labels=LABELS,
                                         jobs=1, stats=warm_stats)
        assert _precision_rows(warm) == _precision_rows(serial)
        # every unit adopted, zero pairs scored, zero feature rebuilds
        assert warm_stats.units_from_store == warm_stats.units_total
        assert warm_stats.units_scored == 0
        assert warm_stats.features_persisted == 0
        assert warm_stats.diff_payloads_persisted == 0
        # ...and the tree gained no feature objects on the warm pass
        features_after = ArtifactStore.attach(tmp_store).entry_count(
            KIND_FEATURES)
        reset_worker_cache()
        rerun_stats = DiffShardStats()
        measure_precision_sharded(WORKLOADS[:1], labels=LABELS, jobs=1,
                                  stats=rerun_stats)
        assert ArtifactStore.attach(tmp_store).entry_count(KIND_FEATURES) \
            == features_after
        assert rerun_stats.features_persisted == 0

    def test_jobs2_over_warm_store_equals_the_reference(self, tmp_store):
        serial = measure_precision(WORKLOADS[:1], labels=LABELS)
        measure_precision_sharded(WORKLOADS[:1], labels=LABELS, jobs=1)
        reset_worker_cache()
        warm_stats = DiffShardStats()
        parallel = measure_precision_sharded(WORKLOADS[:1], labels=LABELS,
                                             jobs=2, stats=warm_stats)
        assert _precision_rows(parallel) == _precision_rows(serial)
        assert warm_stats.units_from_store == warm_stats.units_total

    def test_different_partitions_share_one_store(self, tmp_store):
        """Per-function payloads are partition-agnostic: a run with a
        different shards_per_cell adopts everything a previous partition
        persisted."""
        measure_precision_sharded(WORKLOADS[:1], labels=("fission",),
                                  jobs=1, shards_per_cell=2)
        reset_worker_cache()
        stats = DiffShardStats()
        measure_precision_sharded(WORKLOADS[:1], labels=("fission",),
                                  jobs=1, shards_per_cell=3, stats=stats)
        assert stats.units_from_store == stats.units_total
        assert stats.units_scored == 0


class TestEscapeSharded:
    def test_sharded_escape_equals_the_reference(self):
        workloads = embedded_programs()[:1]
        labels = ("sub", "fufi.all")
        serial = measure_escape(workloads, labels=labels)
        sharded = measure_escape_sharded(workloads, labels=labels, jobs=1)
        parallel = measure_escape_sharded(workloads, labels=labels, jobs=2)
        assert _escape_rows(sharded) == _escape_rows(serial)
        assert _escape_rows(parallel) == _escape_rows(serial)
        for n in (1, 10, 50):
            assert parallel.matrix(n) == serial.matrix(n)


class TestBinTunerSharded:
    def test_sharded_bintuner_equals_the_reference(self):
        serial = measure_bintuner(WORKLOADS[:1], tuner_iterations=1)
        sharded = measure_bintuner_sharded(WORKLOADS[:1], tuner_iterations=1,
                                           jobs=1)
        parallel = measure_bintuner_sharded(WORKLOADS[:1], tuner_iterations=1,
                                            jobs=2)
        assert sharded.rows == serial.rows == parallel.rows
        assert (sharded.bintuner_overhead_percent
                == serial.bintuner_overhead_percent
                == parallel.bintuner_overhead_percent)
